//! The repository-resident label score store.
//!
//! A production repository answers many matching queries; per-query work
//! should touch only what is new about the query. The store keeps, *on
//! the repository itself* and maintained **incrementally on every
//! [`Repository::add`](crate::Repository::add)**:
//!
//! * the [`LabelInterner`] over every distinct element name,
//! * one [`LabelProfile`] per distinct label — the row kernel's
//!   pair-independent preprocessing (normalised form, token profiles,
//!   Myers pattern table, flat trigram profile), built exactly once, at
//!   ingest,
//! * per-schema label ids in arena order (the cost-matrix column map),
//! * the incremental [`TokenIndex`],
//! * a **score-row cache**: for each query label already seen, the dense
//!   vector of name *distances* to every stored label, computed by one
//!   [`RowKernel`] sweep and reused by every later query.
//!
//! Adding a schema appends: new distinct labels get profiles, postings
//! are appended, and cached score rows stay valid — they simply cover a
//! prefix of the grown label list and are *extended* (only the new
//! columns are evaluated) the next time they are requested. Nothing is
//! ever rebuilt from scratch.
//!
//! # Sharded caches
//!
//! The row and partial-row caches are split into label-hash **shards**
//! ([`StoreConfig::shards`]), each with its own lock and counter slice,
//! so concurrent `score_rows` callers — parallel matchers, batch
//! serving — stop serialising on one cache lock. Sharding is invisible
//! to results: rows are keyed by query text, every query hashes to
//! exactly one shard, and the LRU bound stays **global** — a bounded
//! eviction pass locks all shards (in index order) and removes the
//! globally least-recently-used rows, wherever they live, so a sharded
//! bounded store keeps exactly the rows an unsharded one would.
//! Unbounded stores never take a cross-shard lock on the hot path.
//! Counters are merged per shard into one [`StoreCounters`] snapshot by
//! the associative [`StoreCounters::merge`].
//!
//! # Mutability: remove / replace
//!
//! [`Repository::remove_schema`](crate::Repository::remove_schema) and
//! [`Repository::replace_schema`](crate::Repository::replace_schema)
//! mutate a live repository **incrementally**: removal strips exactly
//! the removed schema's tokens from the [`TokenIndex`] and its id from
//! the label→schema postings, tombstones the slot (ids stay stable —
//! a tombstoned slot holds an empty schema every matcher naturally
//! skips), and bumps the slot's generation; replace re-ingests into the
//! same slot at its sorted posting positions. Nothing is rebuilt.
//!
//! Cached score rows are **never invalidated** by mutations, by design:
//! label-level state (interner, profiles, prefix fingerprints) is
//! append-only even across removals, so every cached row stays a valid
//! prefix of per-label distances. Schema membership is consulted at
//! matrix-build time through the immediately-updated column maps and
//! postings — a stale row cannot leak a removed schema into an answer.
//! The cost is **orphaned labels** ([`LabelStore::orphaned_labels`]):
//! labels no live schema references keep their profile and row columns
//! until a full rebuild reclaims them.
//!
//! # Bounded cache (LRU)
//!
//! Unbounded, the row cache grows with the distinct query vocabulary —
//! fine for experiments, not for a long-lived deployment. [`StoreConfig`]
//! puts a lid on it: with `max_cached_rows` set, the cache evicts the
//! least-recently-used row whenever it would exceed the bound. Evicted
//! rows are simply recomputed (bitwise identically) on next sight, so
//! the bound trades pair evaluations for memory and never affects
//! results. Hits, misses, and evictions are counted and surfaced through
//! the [`StoreCounters`] snapshot, so warm-path behaviour under memory
//! pressure stays measurable.
//!
//! # Batched queries
//!
//! [`LabelStore::score_rows`] serves many query labels in one call: the
//! missing rows are computed by a single **profile-major sweep** — one
//! pass over the stored [`LabelProfile`]s, evaluating every pending
//! query kernel per profile — instead of one full pass per query, and
//! the pass is chunked across `std::thread::scope` workers when the
//! pending work is large enough to pay for them. Per-pair values are
//! independent, so the batched sweep is bitwise identical to serving
//! each query alone.
//!
//! # Candidate subsets: partial rows
//!
//! The candidate-generation tier (`smx-match`'s `CandidateGenerator`)
//! scores only a pruned set of schemas, so it needs *some columns* of a
//! query's row, not all of them. [`LabelStore::score_rows_subset`]
//! serves exactly that: a full cached row answers any subset for free;
//! otherwise the store keeps a **separate** coverage-masked partial row
//! per query (full-width values with NaN holes plus a bitset of valid
//! columns) and computes only the still-missing columns, one
//! [`RowKernel::distance`] call each — bitwise identical to the same
//! position of a full sweep, because per-pair values are independent.
//! Partial rows never enter the full-row cache, are never offered to
//! the eviction sink, and the full-row path never consults them — so
//! cached full rows and partial rows coexist without poisoning the
//! bitwise-identity contract or any full-row counter invariant. Subset
//! traffic is accounted separately: `candidate_hits` (requested columns
//! served without kernel work), `candidate_pruned` (columns a full
//! sweep would have computed that the subset skipped), and
//! `partial_row_fills` (fill operations that ran the kernel), all in
//! [`StoreCounters`].
//!
//! The store also maintains, incrementally at ingest, the
//! [`FilterIndex`] of per-label filter lanes and trigram postings that
//! the candidate tier's admissible similarity upper bounds are computed
//! from ([`LabelStore::similarity_upper_bounds`]); it is persisted
//! through `smx-persist`'s FILTERS section and rebuilt from label text
//! when a snapshot predates it or its section is damaged.
//!
//! # Spill: trading disk for recompute
//!
//! With an [`EvictionSink`] installed (see `smx-persist`'s `SpillFile`),
//! evicted rows are handed to the sink *after the cache lock is
//! released* instead of being discarded, and a later miss consults the
//! sink before sweeping: a fully recovered row costs zero pair
//! evaluations, a shorter one (the store grew since the spill) serves as
//! a stale prefix and only its tail is swept. Spilled-then-faulted rows
//! are byte-for-byte the rows that were evicted, so they are bitwise
//! identical to recompute. [`LabelStore::export_state`] /
//! [`LabelStore::import_state`] snapshot and restore the whole hot state
//! (labels, per-schema column maps, token index, cached rows in LRU
//! order) for warm restarts.
//!
//! # Score-identity contract
//!
//! [`LabelStore::score_row`] values are bitwise identical to
//! `NameSimilarity::default().distance(query, label)` — the row kernel
//! guarantees it (see `smx_text::kernel`). The matching crate's
//! `CostMatrix` fills from these rows and stays bitwise equal to direct
//! objective evaluation, which is what `tests/score_identity.rs` in
//! `smx-match` gates on.
//!
//! Every sweep constructs its kernels through
//! [`RowKernel::new`], so the store's pair loops run under the
//! process-wide [`KernelVariant::active`] dispatch tier (scalar oracle,
//! SWAR, or `std::arch` — overridable via `SMX_KERNEL_FORCE`, surfaced
//! in the store's `Debug` output). Variant choice can never change a
//! stored row: all tiers are bitwise-identical by the kernel dispatch
//! contract, differential-tested in `smx_text`.

use crate::filter_index::{FilterIndex, FilterProfileData, QueryFilter};
use crate::index::TokenIndex;
use crate::intern::{LabelId, LabelInterner};
use crate::repository::{ElementRef, SchemaId};
use parking_lot::RwLock;
use smx_text::{KernelVariant, LabelProfile, RowKernel};
use smx_xml::Schema;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;

/// Pending batched sweeps smaller than this many (query, label) pairs
/// stay single-threaded — scoped workers cost more than they save.
const PARALLEL_SWEEP_MIN_PAIRS: usize = 1024;

/// Upper bound on the shard count (`StoreConfig::shards` is clamped to
/// it). Shard counts are rounded up to a power of two so the shard of a
/// query is one hash-and-mask.
const MAX_SHARDS: usize = 64;

/// Work-stealing sweep granularity: each worker's share of the column
/// axis is cut into this many tiles, so a worker that finishes early
/// claims the next tile off the shared cursor instead of idling behind
/// a static partition.
const TILES_PER_WORKER: usize = 4;

/// Sentinel for "no bound" in the atomic `max_cached_rows` cell.
const UNBOUNDED: usize = usize::MAX;

/// FNV-1a 64 offset basis / prime — the label-prefix fingerprint hash.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Continue an FNV-1a 64 hash over more bytes.
fn fnv_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Extend a label-prefix fingerprint by one label (length-framed, so
/// concatenation ambiguities cannot collide two different prefixes).
fn fingerprint_push(hash: u64, label: &str) -> u64 {
    fnv_extend(
        fnv_extend(hash, &(label.len() as u32).to_le_bytes()),
        label.as_bytes(),
    )
}

/// Configuration of a [`LabelStore`]'s score-row cache and batch sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreConfig {
    /// Upper bound on cached score rows. When the cache would exceed it,
    /// least-recently-used rows are evicted (and recomputed, bitwise
    /// identically, if queried again). `None` means unbounded — the
    /// cache grows with the distinct query vocabulary.
    pub max_cached_rows: Option<usize>,
    /// Worker threads for batched row sweeps ([`LabelStore::score_rows`]);
    /// `0` means auto (available parallelism). Small sweeps stay
    /// single-threaded regardless.
    pub batch_threads: usize,
    /// Label-hash shards the row/partial-row caches are split into, each
    /// with its own lock and counters, so concurrent `score_rows` callers
    /// stop serialising on one cache lock. `0` means auto (available
    /// parallelism); any value is clamped to `MAX_SHARDS` (64) and rounded
    /// up to a power of two. Sharding never changes results or the
    /// global LRU policy — eviction still removes the globally
    /// least-recently-used rows (see [`LabelStore`]'s module docs).
    pub shards: usize,
}

/// Receiver for rows evicted from a [`LabelStore`]'s bounded row cache —
/// the hook `smx-persist`'s spill file implements so a memory bound
/// trades disk for recompute instead of discarding work.
///
/// The store calls [`on_evict`](EvictionSink::on_evict) for every
/// evicted row **after releasing the cache lock** (sink I/O never blocks
/// concurrent row lookups), and consults
/// [`recover`](EvictionSink::recover) on a cache miss before sweeping.
/// Recovered rows must be byte-for-byte what was spilled: the store
/// trusts them as valid row prefixes (label ids are append-only, so a
/// shorter recovered row is still a correct prefix of the grown label
/// list).
///
/// # The fingerprint
///
/// A sink may legitimately outlive one store and be consulted by
/// another — clones of a repository diverge (each `add`ing different
/// schemas) while still sharing the sink installed before the split. A
/// spilled row is only correct for a store whose first `row.len()`
/// labels are the ones the row was computed against, so the store
/// passes its label-prefix fingerprint
/// ([`LabelStore::labels_fingerprint`]) at spill time, the sink stores
/// it with the row, and recovery hands it back for the store to check.
/// A mismatch makes the store discard the recovery and recompute —
/// never serve another lineage's distances.
pub trait EvictionSink: Send + Sync {
    /// Persist one evicted row together with the fingerprint of the
    /// label prefix it covers. Returns whether the sink accepted it — a
    /// best-effort sink declines (returns `false`) after e.g. an I/O
    /// error, and the row is then simply dropped as if unspilled.
    fn on_evict(&self, query: &str, row: &[f64], labels_fingerprint: u64) -> bool;

    /// Recover a previously spilled row and the fingerprint recorded
    /// with it, if the sink holds one. `None` on unknown queries *and*
    /// on any read/integrity failure — the store falls back to
    /// recomputing, which is always correct.
    fn recover(&self, query: &str) -> Option<(Vec<f64>, u64)>;

    /// The sink's current health, if it tracks one. The default is
    /// `None` (an opaque sink); `smx-persist`'s spill file reports its
    /// degradation state here, which [`LabelStore::health`] folds into
    /// the store-level [`HealthReport`].
    fn health(&self) -> Option<SinkHealth> {
        None
    }
}

/// Health of an [`EvictionSink`], as self-reported by the sink.
///
/// `degraded` means the sink is temporarily declining spills (it is
/// between a write failure and a successful reopen/retry); `poisoned`
/// means its retry budget is exhausted and it will never accept again.
/// Neither affects correctness — the store recomputes whatever the sink
/// declines — but both mean recompute work the sink was installed to
/// avoid, which is why they are surfaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SinkHealth {
    /// Retry budget exhausted: the sink permanently declines spills.
    pub poisoned: bool,
    /// Temporarily declining spills (cooling down or awaiting reopen).
    pub degraded: bool,
    /// Write errors ever observed.
    pub write_errors: u64,
    /// Successful reopen/recovery cycles after write errors.
    pub reopens: u64,
    /// Bytes in the sink's backing log (including superseded records).
    pub spilled_bytes: u64,
    /// Distinct queries the sink currently holds a recoverable row for.
    pub live_records: u64,
}

/// One consolidated health/degradation view of a [`LabelStore`],
/// returned by [`LabelStore::health`]: the installed sink's self-report
/// (if any), the salvage events recorded when the store was loaded from
/// a damaged snapshot, and the work counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Health of the installed [`EvictionSink`] — `None` when no sink
    /// is installed or the sink doesn't report health.
    pub sink: Option<SinkHealth>,
    /// Salvage events recorded against this store (damaged snapshot
    /// sections that were rebuilt or dropped at load time).
    pub salvage_events: u64,
    /// Cached score rows currently in memory.
    pub cached_rows: usize,
    /// The store's work counters (see [`StoreCounters`]).
    pub counters: StoreCounters,
}

impl HealthReport {
    /// Whether nothing is degraded: no salvaged load, no spill
    /// failures, and the sink (if reporting) neither degraded nor
    /// poisoned.
    pub fn is_healthy(&self) -> bool {
        self.salvage_events == 0
            && self.counters.row_spill_failures == 0
            && self
                .sink
                .is_none_or(|s| !s.poisoned && !s.degraded && s.write_errors == 0)
    }
}

/// Plain-data image of a [`LabelStore`]'s hot state, produced by
/// [`LabelStore::export_state`] and consumed by
/// [`LabelStore::import_state`]. `smx-persist` encodes this to its
/// on-disk snapshot format; keeping the struct here lets the store keep
/// every internal field private.
///
/// Label profiles are deliberately *not* part of the image:
/// [`LabelProfile::new`] is a pure function of the label text, so import
/// rebuilds them from `labels` — cheaper than decoding the prepared
/// Myers tables and gram profiles, and bitwise-equivalent by the kernel
/// contract.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreState {
    /// Distinct labels in [`LabelId`] order. Must be duplicate-free;
    /// `labels[id.index()]` resolves the id.
    pub labels: Vec<String>,
    /// Per schema (by id), the label id of each node in arena order.
    pub schema_labels: Vec<Vec<u32>>,
    /// The token inverted index as `(token, postings)` pairs.
    pub postings: Vec<(String, Vec<ElementRef>)>,
    /// Cached score rows as `(query, distances)`, least recently used
    /// first — import re-stamps them in order, preserving LRU behaviour
    /// across a restart.
    pub rows: Vec<(String, Vec<f64>)>,
    /// The store's cache bound ([`StoreConfig::max_cached_rows`]).
    pub max_cached_rows: Option<usize>,
    /// The store's sweep worker count ([`StoreConfig::batch_threads`]).
    pub batch_threads: usize,
    /// The store's configured shard count ([`StoreConfig::shards`];
    /// `0` = auto). Images exported before sharding decode as `0`.
    pub shards: usize,
    /// The candidate-generation filter lanes, one entry per label in id
    /// order — `None` for images exported before the filter index
    /// existed (import then rebuilds the lanes from `labels`).
    pub filters: Option<Vec<FilterProfileData>>,
    /// Per schema slot: `(removed, generation)` tombstone state —
    /// `None` for images exported before schema mutability existed
    /// (import then treats every slot as live at generation 0, which is
    /// exactly what such an image described).
    pub tombstones: Option<Vec<(bool, u64)>>,
}

/// A consistent snapshot of a [`LabelStore`]'s work counters.
///
/// All row-path counter updates happen while the row-cache lock is held,
/// and [`LabelStore::counters`] reads them under the exclusive lock — so
/// a snapshot is internally consistent even while parallel matchers are
/// filling rows: `row_hits + row_misses == row_lookups` always holds, a
/// guarantee individual relaxed atomic loads could not give.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreCounters {
    /// Label profiles ever built (label-level work; once per distinct
    /// label, at ingest).
    pub profile_builds: u64,
    /// (query, label) kernel evaluations ever run (pair-level work).
    /// Cached repeats must not move this.
    pub pair_evals: u64,
    /// Row lookups served from the cache (including batch-internal
    /// duplicates served from an in-flight row).
    pub row_hits: u64,
    /// Row lookups that had to sweep (absent rows and stale prefixes).
    pub row_misses: u64,
    /// Total row lookups; equals `row_hits + row_misses`.
    pub row_lookups: u64,
    /// Rows evicted by the LRU bound.
    pub row_evictions: u64,
    /// Evicted rows accepted by the installed [`EvictionSink`] (0
    /// without a sink — evicted rows are then discarded).
    pub row_spills: u64,
    /// Missed rows served (fully or as a reusable prefix) from the
    /// eviction sink instead of being recomputed from scratch.
    pub row_spill_recoveries: u64,
    /// Evicted rows the installed sink *declined* (degraded or poisoned
    /// sink, write error, retry cooldown). Each one is warm state lost
    /// to future recompute; 0 without a sink.
    pub row_spill_failures: u64,
    /// Candidate-subset columns served without kernel work — from a
    /// full cached row or an already-covered partial-row position
    /// ([`LabelStore::score_rows_subset`]).
    pub candidate_hits: u64,
    /// Columns a full row sweep would have computed that a candidate
    /// subset skipped — the work the candidate tier saved at the store.
    pub candidate_pruned: u64,
    /// Partial-row fill operations: subset requests that ran the kernel
    /// for at least one missing column.
    pub partial_row_fills: u64,
    /// Schemas removed from the repository
    /// ([`Repository::remove_schema`](crate::Repository::remove_schema)).
    pub schema_removes: u64,
    /// Schemas replaced in place
    /// ([`Repository::replace_schema`](crate::Repository::replace_schema)).
    pub schema_replaces: u64,
}

impl StoreCounters {
    /// Field-wise sum — the associative merge per-shard counter
    /// snapshots are combined with ([`StoreCounters::default`] is the
    /// identity). Each shard's fragment is internally consistent (taken
    /// under that shard's exclusive lock), so the merged total preserves
    /// `row_hits + row_misses == row_lookups`.
    pub fn merge(self, other: StoreCounters) -> StoreCounters {
        StoreCounters {
            profile_builds: self.profile_builds + other.profile_builds,
            pair_evals: self.pair_evals + other.pair_evals,
            row_hits: self.row_hits + other.row_hits,
            row_misses: self.row_misses + other.row_misses,
            row_lookups: self.row_lookups + other.row_lookups,
            row_evictions: self.row_evictions + other.row_evictions,
            row_spills: self.row_spills + other.row_spills,
            row_spill_recoveries: self.row_spill_recoveries + other.row_spill_recoveries,
            row_spill_failures: self.row_spill_failures + other.row_spill_failures,
            candidate_hits: self.candidate_hits + other.candidate_hits,
            candidate_pruned: self.candidate_pruned + other.candidate_pruned,
            partial_row_fills: self.partial_row_fills + other.partial_row_fills,
            schema_removes: self.schema_removes + other.schema_removes,
            schema_replaces: self.schema_replaces + other.schema_replaces,
        }
    }
}

impl std::fmt::Display for StoreCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "store counters: {} lookups ({} hits, {} misses), {} pair evals, {} profiles built",
            self.row_lookups, self.row_hits, self.row_misses, self.pair_evals, self.profile_builds
        )?;
        writeln!(
            f,
            "  cache: {} evictions, {} spills, {} recoveries, {} spill failures",
            self.row_evictions, self.row_spills, self.row_spill_recoveries, self.row_spill_failures
        )?;
        writeln!(
            f,
            "  candidate tier: {} column hits, {} columns pruned, {} partial fills",
            self.candidate_hits, self.candidate_pruned, self.partial_row_fills
        )?;
        write!(
            f,
            "  mutations: {} schema removes, {} schema replaces",
            self.schema_removes, self.schema_replaces
        )
    }
}

/// One cached score row plus its recency stamp. The stamp is atomic so
/// cache hits can refresh it under the shared read lock.
struct CachedRow {
    row: Arc<Vec<f64>>,
    last_used: AtomicU64,
}

impl Clone for CachedRow {
    fn clone(&self) -> Self {
        CachedRow {
            row: Arc::clone(&self.row),
            last_used: AtomicU64::new(self.last_used.load(Relaxed)),
        }
    }
}

/// A coverage-masked partial score row for candidate subsets: values
/// for the covered columns (NaN holes elsewhere) plus a bitset of which
/// columns are valid. Kept in a map separate from the full-row cache so
/// the two can never be confused; a partial may be narrower than the
/// label list after later `add`s (columns past its end are uncovered).
#[derive(Clone)]
struct PartialRow {
    row: Arc<Vec<f64>>,
    coverage: Vec<u64>,
}

/// Whether bit `i` is set in a `u64` bitset.
fn bit_get(bits: &[u64], i: usize) -> bool {
    bits.get(i / 64).is_some_and(|w| (w >> (i % 64)) & 1 == 1)
}

/// Set bit `i` in a `u64` bitset (must be in range).
fn bit_set(bits: &mut [u64], i: usize) {
    bits[i / 64] |= 1u64 << (i % 64);
}

/// One label-hash shard of the row/partial-row caches: its slice of the
/// two maps plus the counters whose lock-consistency invariant is
/// per-shard (`row_hits + row_misses == row_lookups` holds within every
/// shard, so it holds for the merged snapshot too).
struct Shard {
    /// Query label → distances to the first `row.len()` stored labels,
    /// for queries hashing to this shard.
    rows: RwLock<HashMap<String, CachedRow>>,
    /// Query label → coverage-masked partial row (candidate subsets),
    /// same hash split as `rows`.
    partial_rows: RwLock<HashMap<String, PartialRow>>,
    /// This shard's slice of the row/candidate work counters; updated
    /// under this shard's locks, merged by [`LabelStore::counters`].
    counters: ShardCounters,
}

impl Shard {
    fn new() -> Self {
        Shard {
            rows: RwLock::new(HashMap::new()),
            partial_rows: RwLock::new(HashMap::new()),
            counters: ShardCounters::default(),
        }
    }
}

/// The per-shard slice of [`StoreCounters`] — every counter whose
/// paired-update consistency is guaranteed by a shard's own lock.
/// Store-global counters (`pair_evals`, `profile_builds`, mutation
/// counts) stay on [`LabelStore`] itself.
#[derive(Default)]
struct ShardCounters {
    row_hits: AtomicU64,
    row_misses: AtomicU64,
    row_lookups: AtomicU64,
    row_evictions: AtomicU64,
    row_spills: AtomicU64,
    row_spill_recoveries: AtomicU64,
    row_spill_failures: AtomicU64,
    candidate_hits: AtomicU64,
    candidate_pruned: AtomicU64,
    partial_row_fills: AtomicU64,
}

impl ShardCounters {
    /// Relaxed-load snapshot as a [`StoreCounters`] fragment. Callers
    /// hold the shard's exclusive row lock, so the paired
    /// hit/miss/lookup increments cannot be observed split.
    fn snapshot(&self) -> StoreCounters {
        StoreCounters {
            row_hits: self.row_hits.load(Relaxed),
            row_misses: self.row_misses.load(Relaxed),
            row_lookups: self.row_lookups.load(Relaxed),
            row_evictions: self.row_evictions.load(Relaxed),
            row_spills: self.row_spills.load(Relaxed),
            row_spill_recoveries: self.row_spill_recoveries.load(Relaxed),
            row_spill_failures: self.row_spill_failures.load(Relaxed),
            candidate_hits: self.candidate_hits.load(Relaxed),
            candidate_pruned: self.candidate_pruned.load(Relaxed),
            partial_row_fills: self.partial_row_fills.load(Relaxed),
            ..StoreCounters::default()
        }
    }

    /// A detached copy with the same counts (for [`LabelStore`]'s
    /// `Clone`).
    fn detach(&self) -> ShardCounters {
        let c = self.snapshot();
        ShardCounters {
            row_hits: AtomicU64::new(c.row_hits),
            row_misses: AtomicU64::new(c.row_misses),
            row_lookups: AtomicU64::new(c.row_lookups),
            row_evictions: AtomicU64::new(c.row_evictions),
            row_spills: AtomicU64::new(c.row_spills),
            row_spill_recoveries: AtomicU64::new(c.row_spill_recoveries),
            row_spill_failures: AtomicU64::new(c.row_spill_failures),
            candidate_hits: AtomicU64::new(c.candidate_hits),
            candidate_pruned: AtomicU64::new(c.candidate_pruned),
            partial_row_fills: AtomicU64::new(c.partial_row_fills),
        }
    }
}

/// Exact, call-local accounting of one `score_rows` call — what the
/// tracing wrapper stamps into its span attributes. Derived from the
/// call's own work, not from global counter deltas, so the attrs stay
/// exact under concurrent sweeps (the PR-9 approximation this replaces
/// could misattribute a concurrent caller's work).
#[derive(Debug, Default, Clone, Copy)]
struct SweepStats {
    /// Pending rows this call swept (its own row misses).
    rows_swept: u64,
    /// Kernel pair evaluations this call ran.
    pair_evals: u64,
}

/// Call-local accounting of one `score_rows_subset` call (see
/// [`SweepStats`]).
#[derive(Debug, Default, Clone, Copy)]
struct SubsetStats {
    /// Requested columns this call served without kernel work.
    candidate_hits: u64,
    /// Kernel pair evaluations this call ran.
    pair_evals: u64,
}

/// Resolve a configured shard count: `0` means auto (available
/// parallelism), everything is clamped to [`MAX_SHARDS`] and rounded up
/// to a power of two so shard lookup is one hash-and-mask.
fn resolve_shard_count(configured: usize) -> usize {
    let want = if configured == 0 {
        std::thread::available_parallelism().map_or(1, |t| t.get())
    } else {
        configured
    };
    want.clamp(1, MAX_SHARDS).next_power_of_two()
}

/// Interner, per-label profiles, token index, and cached score rows for
/// one repository. Obtained via
/// [`Repository::store`](crate::Repository::store).
pub struct LabelStore {
    interner: LabelInterner,
    /// `profiles[id.index()]` is the profile of `interner.resolve(id)`.
    profiles: Vec<LabelProfile>,
    /// `prefix_hashes[i]` fingerprints labels `0..i` — what spilled
    /// rows are stamped with so recovery can reject rows computed
    /// against a diverged clone's label list. Always `profiles.len()+1`
    /// entries; `prefix_hashes[0]` is the hash offset basis.
    prefix_hashes: Vec<u64>,
    /// Per schema (by id), the label of each node in arena order.
    schema_labels: Vec<Vec<LabelId>>,
    /// Inverse of `schema_labels`: per label (by id), the schemas that
    /// contain it, ascending and deduplicated — the label→schema
    /// postings candidate generation walks instead of scanning every
    /// (schema, label) pair. Derived state, maintained at ingest and
    /// rebuilt on import.
    label_schemas: Vec<Vec<SchemaId>>,
    index: TokenIndex,
    /// Candidate-generation filter lanes and trigram postings, one
    /// entry per label — maintained in lock-step with `profiles` at
    /// ingest.
    filters: FilterIndex,
    /// Per schema slot: `true` once the schema was removed
    /// ([`Repository::remove_schema`](crate::Repository::remove_schema)).
    /// Tombstoned slots keep their id (every `SchemaId` stays valid) but
    /// hold an empty schema and an empty column map.
    removed: Vec<bool>,
    /// Per schema slot: bumped on every remove/replace. Consumers that
    /// cache per-schema derived state can compare generations instead of
    /// diffing schema contents.
    generations: Vec<u64>,
    /// The label-hash shards of the row/partial-row caches (always a
    /// power-of-two count ≥ 1). Rows are append-consistent: label ids
    /// are stable, so a short row is a valid prefix and only its tail
    /// needs computing after adds. Partials are strictly separate from
    /// full rows: they never serve full-row requests.
    shards: Box<[Shard]>,
    /// The *configured* shard count (`0` = auto), reported by
    /// [`config`](Self::config); `shards.len()` is the resolved count.
    config_shards: usize,
    /// Monotonic recency clock for the LRU stamps.
    clock: AtomicU64,
    /// LRU bound on `rows` (`UNBOUNDED` = no bound). Atomic so tests and
    /// deployments can tighten it on a live, shared store.
    max_cached_rows: AtomicUsize,
    /// Worker threads for batched sweeps (0 = auto).
    batch_threads: usize,
    /// Where evicted rows go instead of the void ([`EvictionSink`]);
    /// consulted on misses before sweeping. Shared across clones.
    sink: RwLock<Option<Arc<dyn EvictionSink>>>,
    /// How many label profiles were ever built (label-level work).
    profile_builds: AtomicU64,
    /// How many (query, label) kernel evaluations were ever run
    /// (pair-level work). Repeated queries must not move this.
    pair_evals: AtomicU64,
    /// Schemas removed ([`Self::remove_schema`]).
    schema_removes: AtomicU64,
    /// Schemas replaced in place ([`Self::reingest_schema`]).
    schema_replaces: AtomicU64,
    /// Salvage events recorded when this store was loaded from a
    /// damaged snapshot (see `smx-persist`'s `RecoveryPolicy::Salvage`).
    salvage_events: AtomicU64,
}

/// A query the current `score_rows` call must sweep: its first-seen text,
/// the reusable cached prefix (stale rows), and every output slot that
/// asked for it.
struct PendingRow<'q> {
    query: &'q str,
    prefix: Option<Arc<Vec<f64>>>,
    slots: Vec<usize>,
}

impl LabelStore {
    /// An empty store with the default (unbounded) configuration.
    pub fn new() -> Self {
        LabelStore::with_config(StoreConfig::default())
    }

    /// An empty store with an explicit cache bound / sweep / shard
    /// configuration.
    pub fn with_config(config: StoreConfig) -> Self {
        let shard_count = resolve_shard_count(config.shards);
        LabelStore {
            interner: LabelInterner::new(),
            profiles: Vec::new(),
            prefix_hashes: vec![FNV_OFFSET],
            schema_labels: Vec::new(),
            label_schemas: Vec::new(),
            index: TokenIndex::default(),
            filters: FilterIndex::new(),
            removed: Vec::new(),
            generations: Vec::new(),
            shards: (0..shard_count).map(|_| Shard::new()).collect(),
            config_shards: config.shards,
            clock: AtomicU64::new(0),
            max_cached_rows: AtomicUsize::new(config.max_cached_rows.unwrap_or(UNBOUNDED)),
            batch_threads: config.batch_threads,
            sink: RwLock::new(None),
            profile_builds: AtomicU64::new(0),
            pair_evals: AtomicU64::new(0),
            schema_removes: AtomicU64::new(0),
            schema_replaces: AtomicU64::new(0),
            salvage_events: AtomicU64::new(0),
        }
    }

    /// The store's current configuration. Reports the *configured*
    /// shard count (`0` for auto); [`shard_count`](Self::shard_count)
    /// is the resolved one.
    pub fn config(&self) -> StoreConfig {
        let cap = self.max_cached_rows.load(Relaxed);
        StoreConfig {
            max_cached_rows: (cap != UNBOUNDED).then_some(cap),
            batch_threads: self.batch_threads,
            shards: self.config_shards,
        }
    }

    /// The resolved number of label-hash cache shards (a power of two,
    /// ≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `query`'s rows hash to.
    #[inline]
    fn shard_of(&self, query: &str) -> &Shard {
        let h = fnv_extend(FNV_OFFSET, query.as_bytes());
        &self.shards[h as usize & (self.shards.len() - 1)]
    }

    /// Change the LRU bound on a live store, evicting immediately if the
    /// cache already exceeds the new bound. `None` removes the bound.
    pub fn set_max_cached_rows(&self, max: Option<usize>) {
        self.max_cached_rows
            .store(max.unwrap_or(UNBOUNDED), Relaxed);
        let victims = self.evict_over_cap_global();
        self.spill_victims(victims);
    }

    /// Install (or remove, with `None`) the [`EvictionSink`] evicted
    /// rows are handed to. The sink is shared across clones of this
    /// store; sink I/O always happens outside the row-cache lock.
    pub fn set_eviction_sink(&self, sink: Option<Arc<dyn EvictionSink>>) {
        *self.sink.write() = sink;
    }

    /// Whether an eviction sink is currently installed.
    pub fn has_eviction_sink(&self) -> bool {
        self.sink.read().is_some()
    }

    /// Ingest one schema: intern its labels (building profiles only for
    /// labels never seen before), record its column map, append its
    /// token postings. Called by `Repository::add` with the id the
    /// schema gets; ids must arrive densely in order.
    pub(crate) fn add_schema(&mut self, sid: SchemaId, schema: &Schema) {
        debug_assert_eq!(sid.index(), self.schema_labels.len());
        let labels = self.intern_schema_labels(schema);
        for &lid in &labels {
            let postings = &mut self.label_schemas[lid.index()];
            // Ids arrive in order, so a duplicate label within this
            // schema is always the postings' current tail.
            if postings.last() != Some(&sid) {
                postings.push(sid);
            }
        }
        self.schema_labels.push(labels);
        self.removed.push(false);
        self.generations.push(0);
        self.index.add_schema(sid, schema);
    }

    /// Intern `schema`'s labels, building profiles, filter lanes, and
    /// prefix fingerprints for labels never seen before, and return the
    /// arena-order column map. Label-level state stays append-only —
    /// shared by ingest ([`add_schema`](Self::add_schema)) and replace
    /// ([`reingest_schema`](Self::reingest_schema)).
    fn intern_schema_labels(&mut self, schema: &Schema) -> Vec<LabelId> {
        let known = self.interner.len();
        let labels = self.interner.intern_schema(schema);
        for id in known..self.interner.len() {
            let label = self.interner.resolve(LabelId(id as u32));
            let profile = LabelProfile::new(label);
            self.filters.add_label(&profile);
            self.profiles.push(profile);
            let last = *self
                .prefix_hashes
                .last()
                .expect("offset basis always present");
            self.prefix_hashes.push(fingerprint_push(last, label));
        }
        self.profile_builds
            .fetch_add((self.interner.len() - known) as u64, Relaxed);
        self.label_schemas
            .resize_with(self.interner.len(), Vec::new);
        labels
    }

    /// Remove schema `sid`: strip it from the token index and the
    /// label→schema postings (targeted — only the removed schema's own
    /// tokens and labels are touched, nothing is rebuilt), clear its
    /// column map, and tombstone the slot. `schema` must be the schema
    /// the slot held. Called by
    /// [`Repository::remove_schema`](crate::Repository::remove_schema).
    ///
    /// Cached score rows are deliberately **not** invalidated: rows are
    /// keyed by label *text* and valid per label id, and label-level
    /// state (interner, profiles, fingerprints) stays append-only even
    /// across removals — a removed schema's labels simply become
    /// orphans ([`orphaned_labels`](Self::orphaned_labels)) that no
    /// live schema references. Schema membership is consulted at
    /// matrix-build time through the (immediately updated) column maps
    /// and postings, so stale rows cannot leak removed schemas into
    /// answers.
    pub(crate) fn remove_schema(&mut self, sid: SchemaId, schema: &Schema) {
        debug_assert!(!self.removed[sid.index()], "slot already tombstoned");
        debug_assert_eq!(self.schema_labels[sid.index()].len(), schema.len());
        let mut labels = std::mem::take(&mut self.schema_labels[sid.index()]);
        labels.sort_unstable();
        labels.dedup();
        for lid in labels {
            let postings = &mut self.label_schemas[lid.index()];
            if let Ok(pos) = postings.binary_search(&sid) {
                postings.remove(pos);
            }
        }
        self.index.remove_schema(sid, schema);
        self.removed[sid.index()] = true;
        self.generations[sid.index()] += 1;
        self.schema_removes.fetch_add(1, Relaxed);
        if smx_obs::enabled() {
            smx_obs::registry().counter("store.schema_removes").inc();
        }
    }

    /// Fill tombstoned slot `sid` with `schema`: intern its labels (new
    /// distinct labels append, exactly like ingest), splice the slot
    /// back into the label→schema postings and token index at its
    /// sorted position, and bump the slot's generation. Called by
    /// [`Repository::replace_schema`](crate::Repository::replace_schema)
    /// after [`remove_schema`](Self::remove_schema).
    pub(crate) fn reingest_schema(&mut self, sid: SchemaId, schema: &Schema) {
        debug_assert!(self.removed[sid.index()], "slot must be tombstoned");
        debug_assert!(self.schema_labels[sid.index()].is_empty());
        let labels = self.intern_schema_labels(schema);
        let mut distinct = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        for lid in distinct {
            let postings = &mut self.label_schemas[lid.index()];
            if let Err(pos) = postings.binary_search(&sid) {
                postings.insert(pos, sid);
            }
        }
        self.schema_labels[sid.index()] = labels;
        self.index.insert_schema_sorted(sid, schema);
        self.removed[sid.index()] = false;
        self.generations[sid.index()] += 1;
        self.schema_replaces.fetch_add(1, Relaxed);
        if smx_obs::enabled() {
            smx_obs::registry().counter("store.schema_replaces").inc();
        }
    }

    /// Whether schema slot `sid` is a tombstone (removed, not
    /// replaced). Out-of-range ids are not removed.
    pub fn is_removed(&self, sid: SchemaId) -> bool {
        self.removed.get(sid.index()).copied().unwrap_or(false)
    }

    /// The mutation generation of schema slot `sid`: 0 for a slot never
    /// mutated, bumped on every remove and every replace.
    pub fn schema_generation(&self, sid: SchemaId) -> u64 {
        self.generations[sid.index()]
    }

    /// Number of live (non-tombstoned) schema slots.
    pub fn live_schema_count(&self) -> usize {
        self.removed.iter().filter(|&&r| !r).count()
    }

    /// Number of orphaned labels: distinct labels no live schema
    /// references anymore. Their profiles and cached row columns stay
    /// (label-level state is append-only — the price of never
    /// invalidating a score row), so this gauge is the memory the
    /// append-only design retains after removals.
    pub fn orphaned_labels(&self) -> usize {
        self.label_schemas.iter().filter(|p| p.is_empty()).count()
    }

    /// The interner over every distinct label in the repository.
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// Number of distinct labels stored.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether no labels are stored.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The profile of one stored label.
    pub fn profile(&self, id: LabelId) -> &LabelProfile {
        &self.profiles[id.index()]
    }

    /// Fingerprint of the first `prefix` labels (length-framed FNV-1a
    /// 64). Two stores agree on a fingerprint iff they agree on that
    /// label prefix, which is exactly what makes a spilled row of that
    /// length transferable between them — see [`EvictionSink`].
    pub fn labels_fingerprint(&self, prefix: usize) -> u64 {
        self.prefix_hashes[prefix]
    }

    /// Per-node label ids of `sid`, arena order — the column map a cost
    /// matrix indexes score rows with.
    pub fn schema_labels(&self, sid: SchemaId) -> &[LabelId] {
        &self.schema_labels[sid.index()]
    }

    /// The schemas containing label `id`, ascending and deduplicated —
    /// the inverse of [`schema_labels`](Self::schema_labels). Candidate
    /// generation walks these postings for the few labels a query's
    /// filter bounds single out, instead of scanning every
    /// (schema, label) pair in the repository.
    pub fn schemas_with_label(&self, id: LabelId) -> &[SchemaId] {
        &self.label_schemas[id.index()]
    }

    /// The incremental token inverted index.
    pub fn token_index(&self) -> &TokenIndex {
        &self.index
    }

    /// The candidate-generation filter index (per-label filter lanes
    /// and trigram postings), maintained incrementally at ingest.
    pub fn filter_index(&self) -> &FilterIndex {
        &self.filters
    }

    /// Admissible upper bound on
    /// `NameSimilarity::default().similarity(query, label)` for every
    /// stored label, written into `out` indexed by label id — never
    /// below the true similarity (see [`FilterIndex::sim_upper_bounds`]).
    /// The label raw-equal to the query, if stored, is bounded by the
    /// oracle's raw-equality convention (`1.0`).
    pub fn similarity_upper_bounds(&self, query: &QueryFilter, out: &mut Vec<f64>) {
        self.filters
            .sim_upper_bounds(query, &self.profiles, self.interner.get(query.raw()), out);
    }

    /// The cheap variant of
    /// [`similarity_upper_bounds`](Self::similarity_upper_bounds): the
    /// token-set lane is capped at its trivial `1.0`, so every bound is
    /// still admissible but weaker. The pass's exact trigram
    /// intersection counts land in `tri`, keyed by label id, for later
    /// per-label promotion.
    pub fn similarity_upper_bounds_cheap(
        &self,
        query: &QueryFilter,
        out: &mut Vec<f64>,
        tri: &mut Vec<u32>,
    ) {
        self.filters
            .sim_upper_bounds_cheap(query, self.interner.get(query.raw()), out, tri);
    }

    /// Promote one label's cheap bound to full precision: returns
    /// exactly the value [`similarity_upper_bounds`](Self::similarity_upper_bounds)
    /// would have produced for it. `tri_count` must be the trigram
    /// intersection the cheap pass recorded for this label.
    pub fn refine_similarity_upper_bound(
        &self,
        query: &QueryFilter,
        id: LabelId,
        tri_count: u32,
    ) -> f64 {
        self.filters.refine_sim_upper_bound(
            query,
            &self.profiles,
            self.interner.get(query.raw()),
            id,
            tri_count,
        )
    }

    /// The dense distance row of `query` against every stored label:
    /// `row[id.index()] == NameSimilarity::default().distance(query,
    /// label)`, bitwise (computed by a [`RowKernel`] sweep).
    ///
    /// Rows are cached per distinct query label (up to the configured
    /// LRU bound). A repeated query — the same personal label in a later
    /// `MatchProblem` against this repository — returns the cached row
    /// without evaluating a single pair. After new schemas were added, a
    /// cached row is extended: only distances to the *new* labels are
    /// computed.
    pub fn score_row(&self, query: &str) -> Arc<Vec<f64>> {
        self.score_rows(&[query]).pop().expect("one row per query")
    }

    /// [`score_row`](Self::score_row) for a whole batch of query labels
    /// in one call: `result[i]` is the row of `queries[i]`.
    ///
    /// Cached rows are served as usual; all *missing* rows (duplicates
    /// deduplicated first) are computed by one profile-major sweep over
    /// the stored label profiles — each profile is visited once and
    /// every pending query kernel evaluated against it — chunked across
    /// scoped worker threads when the pending work is large. Every pair
    /// value is independent, so the result is bitwise identical to
    /// calling `score_row` per query, in any order.
    ///
    /// Concurrent callers may sweep the same query redundantly; they
    /// compute identical values, so last-write-wins is fine.
    pub fn score_rows(&self, queries: &[&str]) -> Vec<Arc<Vec<f64>>> {
        if !smx_obs::enabled() {
            return self.score_rows_core(queries).0;
        }
        let mut span = smx_obs::span("store.score_rows");
        let (out, stats) = self.score_rows_core(queries);
        // Exact, call-local accounting: the sweep path returns its own
        // stats, so the attrs are exact even under concurrent sweeps
        // (this replaces the PR-9 counter-delta approximation, which
        // could misattribute a concurrent caller's work to this span).
        span.attr("queries", queries.len());
        span.attr("rows_swept", stats.rows_swept);
        span.attr("pair_evals", stats.pair_evals);
        smx_obs::registry()
            .histogram("store.score_rows_ns")
            .observe_ns(span.elapsed_ns());
        out
    }

    /// The body of [`score_rows`](Self::score_rows) with no tracing
    /// wrapper — the uninstrumented sweep path. The `trace_overhead`
    /// bench group measures this as the baseline the
    /// instrumented-but-disabled `score_rows` is held to (≤5% apart);
    /// everyone else should call `score_rows`.
    pub fn score_rows_uninstrumented(&self, queries: &[&str]) -> Vec<Arc<Vec<f64>>> {
        self.score_rows_core(queries).0
    }

    /// Shared body of the `score_rows` entry points: serve hits from
    /// each query's shard under that shard's read lock, sweep the rest.
    /// Returns the rows plus this call's exact work stats.
    fn score_rows_core(&self, queries: &[&str]) -> (Vec<Arc<Vec<f64>>>, SweepStats) {
        let n = self.profiles.len();
        let mut out: Vec<Option<Arc<Vec<f64>>>> = vec![None; queries.len()];
        let mut pending: Vec<PendingRow<'_>> = Vec::new();
        let mut pending_of: HashMap<&str, usize> = HashMap::new();
        for (i, &q) in queries.iter().enumerate() {
            if let Some(&pi) = pending_of.get(q) {
                pending[pi].slots.push(i);
                continue;
            }
            let shard = self.shard_of(q);
            let cache = shard.rows.read();
            match cache.get(q) {
                Some(entry) if entry.row.len() == n => {
                    entry.last_used.store(self.tick(), Relaxed);
                    shard.counters.row_lookups.fetch_add(1, Relaxed);
                    shard.counters.row_hits.fetch_add(1, Relaxed);
                    out[i] = Some(Arc::clone(&entry.row));
                }
                stale => {
                    let prefix = stale.map(|entry| Arc::clone(&entry.row));
                    pending_of.insert(q, pending.len());
                    pending.push(PendingRow {
                        query: q,
                        prefix,
                        slots: vec![i],
                    });
                }
            }
        }
        let stats = if pending.is_empty() {
            SweepStats::default()
        } else {
            self.fill_pending(&mut out, &mut pending, n)
        };
        (
            out.into_iter()
                .map(|row| row.expect("every slot filled"))
                .collect(),
            stats,
        )
    }

    /// The distance row of each query restricted to the columns in
    /// `cols` — the candidate tier's entry point: score only the labels
    /// the pruned candidate schemas actually reference.
    ///
    /// `result[i][c]` equals `score_row(queries[i])[c]` **bitwise** for
    /// every `c` in `cols` (per-pair values are position-independent,
    /// so a per-column [`RowKernel::distance`] call equals the same
    /// position of a full sweep); positions outside `cols` are
    /// unspecified (NaN holes) and may be narrower than the label list.
    ///
    /// A full cached row answers any subset for free. Otherwise the
    /// query's coverage-masked partial row serves the columns it
    /// already covers and only the rest are computed — so repeated
    /// candidate queries converge to zero kernel work just like full
    /// rows do. Partial rows live in their own map: they are never
    /// promoted into the full-row cache, never spilled, and the
    /// full-row path never consults them, keeping every existing
    /// full-row counter invariant intact. Subset traffic moves only
    /// `pair_evals`, `candidate_hits`, `candidate_pruned`, and
    /// `partial_row_fills`.
    pub fn score_rows_subset(&self, queries: &[&str], cols: &[usize]) -> Vec<Arc<Vec<f64>>> {
        if !smx_obs::enabled() {
            return self.score_rows_subset_core(queries, cols).0;
        }
        let mut span = smx_obs::span("store.score_rows_subset");
        let (out, stats) = self.score_rows_subset_core(queries, cols);
        // Exact, call-local accounting — see `score_rows` on why attrs
        // come from the call's own stats, not counter deltas.
        span.attr("queries", queries.len());
        span.attr("cols", cols.len());
        span.attr("candidate_hits", stats.candidate_hits);
        span.attr("pair_evals", stats.pair_evals);
        smx_obs::registry()
            .histogram("store.score_rows_subset_ns")
            .observe_ns(span.elapsed_ns());
        out
    }

    fn score_rows_subset_core(
        &self,
        queries: &[&str],
        cols: &[usize],
    ) -> (Vec<Arc<Vec<f64>>>, SubsetStats) {
        let n = self.profiles.len();
        debug_assert!(cols.iter().all(|&c| c < n), "columns must be in range");
        let mut stats = SubsetStats::default();
        let mut out: Vec<Option<Arc<Vec<f64>>>> = vec![None; queries.len()];
        let mut pending: Vec<(&str, Vec<usize>)> = Vec::new();
        let mut pending_of: HashMap<&str, usize> = HashMap::new();
        for (i, &q) in queries.iter().enumerate() {
            if let Some(&pi) = pending_of.get(q) {
                pending[pi].1.push(i);
                continue;
            }
            let shard = self.shard_of(q);
            let cache = shard.rows.read();
            match cache.get(q) {
                Some(entry) if entry.row.len() == n => {
                    // A full row serves any subset; refresh recency
                    // so subset traffic keeps hot rows hot.
                    entry.last_used.store(self.tick(), Relaxed);
                    shard
                        .counters
                        .candidate_hits
                        .fetch_add(cols.len() as u64, Relaxed);
                    stats.candidate_hits += cols.len() as u64;
                    out[i] = Some(Arc::clone(&entry.row));
                }
                _ => {
                    pending_of.insert(q, pending.len());
                    pending.push((q, vec![i]));
                }
            }
        }
        for (q, slots) in pending {
            let shard = self.shard_of(q);
            // Snapshot what the partial row already covers, compute the
            // missing columns outside any lock (concurrent fills compute
            // identical values, so last-write-wins merging is safe),
            // then merge under the write lock.
            let (prior, covered): (Option<Arc<Vec<f64>>>, Vec<bool>) = {
                let partials = shard.partial_rows.read();
                match partials.get(q) {
                    Some(p) => (
                        Some(Arc::clone(&p.row)),
                        cols.iter()
                            .map(|&c| c < p.row.len() && bit_get(&p.coverage, c))
                            .collect(),
                    ),
                    None => (None, vec![false; cols.len()]),
                }
            };
            let missing: Vec<usize> = cols
                .iter()
                .zip(&covered)
                .filter(|&(_, &hit)| !hit)
                .map(|(&c, _)| c)
                .collect();
            shard
                .counters
                .candidate_hits
                .fetch_add((cols.len() - missing.len()) as u64, Relaxed);
            stats.candidate_hits += (cols.len() - missing.len()) as u64;
            shard
                .counters
                .candidate_pruned
                .fetch_add((n - cols.len()) as u64, Relaxed);
            if missing.is_empty() {
                // `cols` may itself be empty (a fully pruned problem
                // still fills its zero-column matrix): any row serves
                // an empty subset, including one that was never filled.
                let row = prior.unwrap_or_else(|| Arc::new(Vec::new()));
                for &slot in &slots {
                    out[slot] = Some(Arc::clone(&row));
                }
                continue;
            }
            let kernel = RowKernel::new(q);
            let values: Vec<f64> = missing
                .iter()
                .map(|&c| kernel.distance(&self.profiles[c]))
                .collect();
            self.pair_evals.fetch_add(missing.len() as u64, Relaxed);
            stats.pair_evals += missing.len() as u64;
            shard.counters.partial_row_fills.fetch_add(1, Relaxed);
            let row = {
                let mut partials = shard.partial_rows.write();
                let entry = partials.entry(q.to_owned()).or_insert_with(|| PartialRow {
                    row: Arc::new(Vec::new()),
                    coverage: Vec::new(),
                });
                let vec = Arc::make_mut(&mut entry.row);
                if vec.len() < n {
                    vec.resize(n, f64::NAN);
                }
                let words = n.div_ceil(64);
                if entry.coverage.len() < words {
                    entry.coverage.resize(words, 0);
                }
                for (&c, &v) in missing.iter().zip(&values) {
                    vec[c] = v;
                    bit_set(&mut entry.coverage, c);
                }
                Arc::clone(&entry.row)
            };
            for &slot in &slots {
                out[slot] = Some(Arc::clone(&row));
            }
        }
        (
            out.into_iter()
                .map(|row| row.expect("every slot filled"))
                .collect(),
            stats,
        )
    }

    /// Sweep all pending rows and install each into its query's shard
    /// (under that shard's write lock), updating counters and then
    /// evicting past the LRU bound with one global pass. Rows absent
    /// from memory are first offered to the eviction sink: a spilled row
    /// faults back in as a (possibly complete) prefix, so only the tail
    /// the store grew since the spill — often nothing — is recomputed.
    /// All sink I/O and evicted-row spilling happens outside the cache
    /// locks. Returns this call's exact work stats.
    fn fill_pending(
        &self,
        out: &mut [Option<Arc<Vec<f64>>>],
        pending: &mut [PendingRow<'_>],
        n: usize,
    ) -> SweepStats {
        let sink = self.sink.read().clone();
        let mut recovered = vec![false; pending.len()];
        if let Some(sink) = &sink {
            for (p, rec) in pending.iter_mut().zip(&mut recovered) {
                if p.prefix.is_none() {
                    // Trust a recovered row only if it is a plausible
                    // prefix (rows longer than the label list cannot
                    // come from this store's history) *and* its
                    // fingerprint proves it was computed against our
                    // label prefix — not a diverged clone's.
                    if let Some((row, fingerprint)) = sink.recover(p.query) {
                        if row.len() <= n && fingerprint == self.prefix_hashes[row.len()] {
                            p.prefix = Some(Arc::new(row));
                            *rec = true;
                        }
                    }
                }
            }
        }
        // Fully recovered/hot-prefix rows need no kernel at all — don't
        // pay the query-profile build for a zero-length tail.
        let kernels: Vec<(Option<RowKernel>, usize)> = pending
            .iter()
            .map(|p| {
                let start = p.prefix.as_ref().map_or(0, |prefix| prefix.len());
                ((start < n).then(|| RowKernel::new(p.query)), start)
            })
            .collect();
        let tails = self.sweep(&kernels, n);
        let computed: u64 = kernels.iter().map(|&(_, start)| (n - start) as u64).sum();
        self.pair_evals.fetch_add(computed, Relaxed);
        for ((p, rec), tail) in pending.iter().zip(&recovered).zip(tails) {
            let row = match &p.prefix {
                // A complete prefix (recovered or cached) is reused
                // as-is — no copy, no appended tail.
                Some(prefix) if prefix.len() == n => Arc::clone(prefix),
                prefix => {
                    let mut row = Vec::with_capacity(n);
                    if let Some(prefix) = prefix {
                        row.extend_from_slice(prefix);
                    }
                    row.extend(tail);
                    Arc::new(row)
                }
            };
            for &slot in &p.slots {
                out[slot] = Some(Arc::clone(&row));
            }
            let shard = self.shard_of(p.query);
            let mut cache = shard.rows.write();
            // One miss per row not served from memory; batch-internal
            // duplicates were served from the in-flight row and count
            // as hits. Counted under the shard's write lock so the
            // per-shard hit/miss/lookup invariant can't be seen split.
            shard
                .counters
                .row_lookups
                .fetch_add(p.slots.len() as u64, Relaxed);
            shard.counters.row_misses.fetch_add(1, Relaxed);
            shard
                .counters
                .row_hits
                .fetch_add(p.slots.len() as u64 - 1, Relaxed);
            if *rec {
                shard.counters.row_spill_recoveries.fetch_add(1, Relaxed);
                if smx_obs::enabled() {
                    smx_obs::registry().counter("store.spill_recoveries").inc();
                }
            }
            cache.insert(
                p.query.to_owned(),
                CachedRow {
                    row,
                    last_used: AtomicU64::new(self.tick()),
                },
            );
        }
        let victims = self.evict_over_cap_global();
        self.spill_victims(victims);
        SweepStats {
            rows_swept: pending.len() as u64,
            pair_evals: computed,
        }
    }

    /// Compute each kernel's missing row tail (`start..n`) by one tiled
    /// pass over the stored profiles: the column axis is cut into
    /// contiguous chunks, and within a chunk every pending kernel
    /// streams the same cache-resident profiles through its tight pair
    /// loop — profile loads are amortised across the whole batch instead
    /// of repeated per query. Chunks go to scoped workers when the
    /// pending work is large enough to pay for them.
    fn sweep(&self, kernels: &[(Option<RowKernel>, usize)], n: usize) -> Vec<Vec<f64>> {
        let threads = self.sweep_threads(kernels, n);
        if threads <= 1 {
            return Self::sweep_chunk(kernels, &self.profiles, 0);
        }
        // Tile only the columns some kernel actually covers — when every
        // pending row is a stale-prefix extension (tails starting deep
        // into the label list), tiling from 0 would hand most workers
        // empty ranges.
        let base = kernels.iter().map(|&(_, start)| start).min().unwrap_or(0);
        // Work-stealing: cut the column axis into more tiles than
        // workers and let each worker claim the next tile off a shared
        // cursor — a worker that finishes early (cheap columns, a cold
        // cache elsewhere) pulls more work instead of idling behind a
        // static partition. Tile boundaries are deterministic, so the
        // stitched result is identical no matter which worker computed
        // which tile.
        let tiles = (threads * TILES_PER_WORKER).min(n - base).max(1);
        let tile_size = (n - base).div_ceil(tiles);
        let cursor = AtomicUsize::new(0);
        let mut tile_parts: Vec<Option<Vec<Vec<f64>>>> = (0..tiles).map(|_| None).collect();
        std::thread::scope(|scope| {
            let cursor = &cursor;
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut claimed = Vec::new();
                        loop {
                            let t = cursor.fetch_add(1, Relaxed);
                            if t >= tiles {
                                break;
                            }
                            let lo = base + t * tile_size;
                            let hi = (lo + tile_size).min(n);
                            if lo >= hi {
                                continue;
                            }
                            claimed
                                .push((t, Self::sweep_chunk(kernels, &self.profiles[lo..hi], lo)));
                        }
                        claimed
                    })
                })
                .collect();
            for handle in handles {
                for (t, part) in handle.join().expect("sweep worker panicked") {
                    tile_parts[t] = Some(part);
                }
            }
        });
        // Stitch the tiles back in column order; per-pair values are
        // independent, so this equals the single-threaded pass bitwise.
        let mut rows: Vec<Vec<f64>> = kernels
            .iter()
            .map(|&(_, start)| Vec::with_capacity(n - start))
            .collect();
        for part in tile_parts.into_iter().flatten() {
            for (row, chunk_row) in rows.iter_mut().zip(part) {
                row.extend(chunk_row);
            }
        }
        rows
    }

    /// One tile of the sweep: every kernel's distances over the columns
    /// `offset..offset + profiles.len()` (clipped to each kernel's own
    /// `start`), computed by the kernel's streaming row loop.
    fn sweep_chunk(
        kernels: &[(Option<RowKernel>, usize)],
        profiles: &[LabelProfile],
        offset: usize,
    ) -> Vec<Vec<f64>> {
        kernels
            .iter()
            .map(|(kernel, start)| {
                let skip = start.saturating_sub(offset);
                let mut row = Vec::new();
                if let Some(kernel) = kernel {
                    if skip < profiles.len() {
                        kernel.distances_into(&profiles[skip..], &mut row);
                    }
                }
                row
            })
            .collect()
    }

    /// Worker count for a pending sweep: 1 unless the pair count clears
    /// [`PARALLEL_SWEEP_MIN_PAIRS`], else the configured/auto thread
    /// count — capped so every worker keeps at least that many pairs
    /// (and by the column count).
    fn sweep_threads(&self, kernels: &[(Option<RowKernel>, usize)], n: usize) -> usize {
        let work: usize = kernels.iter().map(|&(_, start)| n - start).sum();
        if work < PARALLEL_SWEEP_MIN_PAIRS {
            return 1;
        }
        let configured = if self.batch_threads == 0 {
            std::thread::available_parallelism().map_or(1, |t| t.get())
        } else {
            self.batch_threads
        };
        configured
            .max(1)
            .min(work / PARALLEL_SWEEP_MIN_PAIRS)
            .max(1)
            .min(n.max(1))
    }

    /// Next recency-clock value.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Relaxed) + 1
    }

    /// Evict globally least-recently-used rows until the whole cache
    /// respects the configured bound, returning `(shard, query, row)`
    /// victims so the caller can hand them to the eviction sink *after*
    /// the locks drop. Unbounded stores return immediately without
    /// touching a single lock.
    ///
    /// Bounded stores acquire **every** shard's row lock in index order
    /// — the store's one multi-lock order, shared with
    /// [`counters`](Self::counters), `Clone`, and
    /// [`export_state`](Self::export_state) — so the eviction decision
    /// is exact across shards: the global LRU rows go, wherever they
    /// live, and sharding never changes which rows a bounded cache
    /// keeps. One stamp scan + one partial sort of the victims, so
    /// tightening the bound on a large live cache stays
    /// `O(len log len)`, not `O(len²)`.
    #[must_use = "victims must be offered to the eviction sink outside the lock"]
    fn evict_over_cap_global(&self) -> Vec<(usize, String, Arc<Vec<f64>>)> {
        let cap = self.max_cached_rows.load(Relaxed);
        if cap == UNBOUNDED {
            return Vec::new();
        }
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.rows.write()).collect();
        let total: usize = guards.iter().map(|g| g.len()).sum();
        let Some(excess) = total.checked_sub(cap).filter(|&e| e > 0) else {
            return Vec::new();
        };
        let mut stamps: Vec<(u64, usize, String)> = guards
            .iter()
            .enumerate()
            .flat_map(|(si, cache)| {
                cache
                    .iter()
                    .map(move |(key, entry)| (entry.last_used.load(Relaxed), si, key.clone()))
            })
            .collect();
        stamps.select_nth_unstable(excess - 1);
        let victims = stamps[..excess]
            .iter()
            .map(|(_, si, key)| {
                let (key, entry) = guards[*si]
                    .remove_entry(key)
                    .expect("victim key came from the cache");
                self.shards[*si]
                    .counters
                    .row_evictions
                    .fetch_add(1, Relaxed);
                (*si, key, entry.row)
            })
            .collect();
        if smx_obs::enabled() {
            smx_obs::registry()
                .counter("store.row_evictions")
                .add(excess as u64);
        }
        victims
    }

    /// Offer evicted rows to the installed sink (if any). Runs with no
    /// cache lock held — sink I/O never blocks row lookups. Spill
    /// outcomes are counted against each victim's own shard.
    fn spill_victims(&self, victims: Vec<(usize, String, Arc<Vec<f64>>)>) {
        if victims.is_empty() {
            return;
        }
        let Some(sink) = self.sink.read().clone() else {
            return;
        };
        let mut spilled = 0u64;
        for (si, query, row) in &victims {
            let counters = &self.shards[*si].counters;
            if sink.on_evict(query, row.as_slice(), self.prefix_hashes[row.len()]) {
                counters.row_spills.fetch_add(1, Relaxed);
                spilled += 1;
            } else {
                counters.row_spill_failures.fetch_add(1, Relaxed);
            }
        }
        if smx_obs::enabled() {
            let registry = smx_obs::registry();
            registry.counter("store.row_spills").add(spilled);
            registry
                .counter("store.row_spill_failures")
                .add(victims.len() as u64 - spilled);
        }
    }

    /// Number of query labels with a cached score row (summed over the
    /// shards).
    pub fn cached_rows(&self) -> usize {
        self.shards.iter().map(|s| s.rows.read().len()).sum()
    }

    /// Number of cached score rows in shard `shard` (for per-shard
    /// occupancy gauges; out-of-range shards hold 0 rows).
    pub fn shard_cached_rows(&self, shard: usize) -> usize {
        self.shards.get(shard).map_or(0, |s| s.rows.read().len())
    }

    /// Whether `query` currently has a cached (possibly stale-prefix)
    /// row. Read-only: does not refresh LRU recency or count a lookup.
    pub fn has_cached_row(&self, query: &str) -> bool {
        self.shard_of(query).rows.read().contains_key(query)
    }

    /// Drop every cached score row *and* every partial row (profiles
    /// and indexes stay). Benches use this to measure a genuinely cold
    /// fill.
    pub fn clear_rows(&self) {
        for shard in self.shards.iter() {
            shard.rows.write().clear();
            shard.partial_rows.write().clear();
        }
    }

    /// A consistent snapshot of every work counter.
    ///
    /// Each shard's counter fragment is read under that shard's
    /// exclusive row lock, and all row-path counter updates happen while
    /// the owning shard's lock is held (shared for hits, exclusive for
    /// sweeps) — so no fragment can observe a lookup whose hit/miss
    /// classification is still in flight, and the merged snapshot keeps
    /// `row_hits + row_misses == row_lookups` even while parallel
    /// matchers are filling rows. Tests should assert on this snapshot
    /// rather than on individual counter loads.
    pub fn counters(&self) -> StoreCounters {
        let mut merged = StoreCounters {
            profile_builds: self.profile_builds.load(Relaxed),
            pair_evals: self.pair_evals.load(Relaxed),
            schema_removes: self.schema_removes.load(Relaxed),
            schema_replaces: self.schema_replaces.load(Relaxed),
            ..StoreCounters::default()
        };
        for shard in self.shards.iter() {
            let _guard = shard.rows.write();
            merged = merged.merge(shard.counters.snapshot());
        }
        merged
    }

    /// One consolidated health/degradation view: the installed sink's
    /// self-reported [`SinkHealth`], the salvage events recorded at
    /// load time, the in-memory row count, and the work counters.
    /// Everything in it is observational — a degraded report means lost
    /// amortisation, never wrong answers.
    pub fn health(&self) -> HealthReport {
        HealthReport {
            sink: self.sink.read().as_ref().and_then(|s| s.health()),
            salvage_events: self.salvage_events.load(Relaxed),
            cached_rows: self.cached_rows(),
            counters: self.counters(),
        }
    }

    /// Export one merged observability report: a snapshot of the global
    /// `smx-obs` metrics registry with this store's [`StoreCounters`],
    /// cache occupancy, salvage events, and the installed sink's
    /// [`SinkHealth`] grafted in as gauges. This is the
    /// `MetricsSnapshot` examples and `smx-bench` render — one report
    /// covering both the tracing-side instruments and the store's own
    /// counters.
    pub fn publish_metrics(&self) -> smx_obs::MetricsSnapshot {
        let health = self.health();
        let mut snapshot = smx_obs::registry().snapshot();
        let c = health.counters;
        snapshot.set_gauge("store.profile_builds", c.profile_builds as f64);
        snapshot.set_gauge("store.pair_evals", c.pair_evals as f64);
        snapshot.set_gauge("store.row_lookups", c.row_lookups as f64);
        snapshot.set_gauge("store.row_hits", c.row_hits as f64);
        snapshot.set_gauge("store.row_misses", c.row_misses as f64);
        snapshot.set_gauge("store.row_evictions_total", c.row_evictions as f64);
        snapshot.set_gauge("store.row_spills_total", c.row_spills as f64);
        snapshot.set_gauge(
            "store.row_spill_recoveries_total",
            c.row_spill_recoveries as f64,
        );
        snapshot.set_gauge(
            "store.row_spill_failures_total",
            c.row_spill_failures as f64,
        );
        snapshot.set_gauge("store.candidate_hits", c.candidate_hits as f64);
        snapshot.set_gauge("store.candidate_pruned", c.candidate_pruned as f64);
        snapshot.set_gauge("store.partial_row_fills", c.partial_row_fills as f64);
        snapshot.set_gauge("store.cached_rows", health.cached_rows as f64);
        snapshot.set_gauge("store.salvage_events", health.salvage_events as f64);
        snapshot.set_gauge("store.schema_removes", c.schema_removes as f64);
        snapshot.set_gauge("store.schema_replaces", c.schema_replaces as f64);
        snapshot.set_gauge("store.live_schemas", self.live_schema_count() as f64);
        snapshot.set_gauge("store.orphaned_labels", self.orphaned_labels() as f64);
        snapshot.set_gauge("store.shards", self.shards.len() as f64);
        for (si, shard) in self.shards.iter().enumerate() {
            snapshot.set_gauge(
                &format!("store.shard.{si}.cached_rows"),
                shard.rows.read().len() as f64,
            );
        }
        if let Some(sink) = health.sink {
            snapshot.set_gauge("store.sink.poisoned", u64::from(sink.poisoned) as f64);
            snapshot.set_gauge("store.sink.degraded", u64::from(sink.degraded) as f64);
            snapshot.set_gauge("store.sink.write_errors", sink.write_errors as f64);
            snapshot.set_gauge("store.sink.reopens", sink.reopens as f64);
            snapshot.set_gauge("store.sink.spilled_bytes", sink.spilled_bytes as f64);
            snapshot.set_gauge("store.sink.live_records", sink.live_records as f64);
        }
        snapshot
    }

    /// Record `n` snapshot-salvage events against this store.
    /// `smx-persist` calls this after a `Salvage` load rebuilt or
    /// dropped damaged sections, so [`health`](Self::health) reflects
    /// that this store's warm state was degraded at load time.
    pub fn record_salvage_events(&self, n: u64) {
        self.salvage_events.fetch_add(n, Relaxed);
    }

    /// Salvage events recorded against this store (see
    /// [`record_salvage_events`](Self::record_salvage_events)).
    pub fn salvage_events(&self) -> u64 {
        self.salvage_events.load(Relaxed)
    }

    /// Snapshot the store's hot state — interned labels, per-schema
    /// column maps, token index, cached score rows in LRU order, and the
    /// cache configuration — as plain data for `smx-persist` to encode.
    ///
    /// Taken under the exclusive row lock, so the row image is
    /// internally consistent even while concurrent matchers fill rows.
    /// Work counters are *not* part of the image: they describe the
    /// process, not the repository.
    pub fn export_state(&self) -> StoreState {
        // Snapshot (stamp, query, Arc) under the exclusive locks (all
        // shards, index order — the store's one multi-lock order) —
        // cheap — then sort and materialise the row copies after
        // releasing them, so a large export doesn't stall concurrent
        // matchers.
        let mut rows: Vec<(u64, String, Arc<Vec<f64>>)> = {
            let guards: Vec<_> = self.shards.iter().map(|s| s.rows.write()).collect();
            guards
                .iter()
                .flat_map(|cache| {
                    cache.iter().map(|(query, entry)| {
                        (
                            entry.last_used.load(Relaxed),
                            query.clone(),
                            Arc::clone(&entry.row),
                        )
                    })
                })
                .collect()
        };
        // Oldest first (ties broken by query text so exports are
        // deterministic), so import can re-stamp in order.
        rows.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        StoreState {
            labels: (0..self.interner.len())
                .map(|id| self.interner.resolve(LabelId(id as u32)).to_owned())
                .collect(),
            schema_labels: self
                .schema_labels
                .iter()
                .map(|labels| labels.iter().map(|id| id.0).collect())
                .collect(),
            postings: self
                .index
                .postings()
                .map(|(token, elements)| (token.to_owned(), elements.to_vec()))
                .collect(),
            rows: rows
                .into_iter()
                .map(|(_, query, row)| (query, (*row).clone()))
                .collect(),
            max_cached_rows: self.config().max_cached_rows,
            batch_threads: self.batch_threads,
            shards: self.config_shards,
            filters: Some(self.filters.export()),
            tombstones: Some(
                self.removed
                    .iter()
                    .zip(&self.generations)
                    .map(|(&removed, &generation)| (removed, generation))
                    .collect(),
            ),
        }
    }

    /// Rebuild a store from an exported (or snapshot-decoded) image.
    ///
    /// Labels are re-interned in id order and their [`LabelProfile`]s
    /// rebuilt (a pure function of the label text, so row values stay
    /// bitwise identical); cached rows are re-stamped in the image's LRU
    /// order. If the image holds more rows than `max_cached_rows`
    /// allows, only the most recently used rows are kept. Counters start
    /// fresh except `profile_builds`, which counts the rebuilds this
    /// import performed.
    ///
    /// The image must be internally consistent (distinct labels, column
    /// ids within range, row lengths no longer than the label list) —
    /// `smx-persist` validates decoded snapshots before calling this.
    pub fn import_state(state: StoreState) -> LabelStore {
        let mut interner = LabelInterner::new();
        let mut profiles = Vec::with_capacity(state.labels.len());
        let mut prefix_hashes = Vec::with_capacity(state.labels.len() + 1);
        prefix_hashes.push(FNV_OFFSET);
        for label in &state.labels {
            let id = interner.intern(label);
            debug_assert_eq!(
                id.index(),
                profiles.len(),
                "state labels must be distinct and in id order"
            );
            profiles.push(LabelProfile::new(label));
            let last = *prefix_hashes.last().expect("offset basis always present");
            prefix_hashes.push(fingerprint_push(last, label));
        }
        let schema_labels: Vec<Vec<LabelId>> = state
            .schema_labels
            .into_iter()
            .map(|labels| labels.into_iter().map(LabelId).collect())
            .collect();
        // label→schema postings are pure derived state: rebuild the
        // inverse of the imported column maps.
        let mut label_schemas: Vec<Vec<SchemaId>> = vec![Vec::new(); profiles.len()];
        for (i, labels) in schema_labels.iter().enumerate() {
            let sid = SchemaId(i as u32);
            for &lid in labels {
                let postings = &mut label_schemas[lid.index()];
                if postings.last() != Some(&sid) {
                    postings.push(sid);
                }
            }
        }
        // Persisted filter lanes skip the per-label re-derivation; an
        // absent/short/invalid image (older snapshot, salvaged FILTERS
        // section) falls back to rebuilding from the label text, which
        // yields identical lanes by construction.
        let filters = state
            .filters
            .and_then(FilterIndex::try_from_data)
            .filter(|f| f.len() == profiles.len())
            .unwrap_or_else(|| FilterIndex::rebuild(&profiles));
        // Tombstone state: images that predate mutability described a
        // fully live repository, so absent (or short) tombstone lists
        // default to live-at-generation-0 per slot.
        let slots = schema_labels.len();
        let mut removed = vec![false; slots];
        let mut generations = vec![0u64; slots];
        if let Some(tombstones) = state.tombstones {
            for (i, (r, g)) in tombstones.into_iter().take(slots).enumerate() {
                removed[i] = r;
                generations[i] = g;
            }
        }
        let cap = state.max_cached_rows.unwrap_or(UNBOUNDED);
        let keep_from = state.rows.len().saturating_sub(cap);
        let shard_count = resolve_shard_count(state.shards);
        let shards: Box<[Shard]> = (0..shard_count).map(|_| Shard::new()).collect();
        let mut clock = 0u64;
        for (query, row) in state.rows.into_iter().skip(keep_from) {
            clock += 1;
            let h = fnv_extend(FNV_OFFSET, query.as_bytes());
            shards[h as usize & (shard_count - 1)].rows.write().insert(
                query,
                CachedRow {
                    row: Arc::new(row),
                    last_used: AtomicU64::new(clock),
                },
            );
        }
        LabelStore {
            profile_builds: AtomicU64::new(profiles.len() as u64),
            interner,
            profiles,
            prefix_hashes,
            schema_labels,
            label_schemas,
            index: TokenIndex::from_postings(state.postings),
            filters,
            removed,
            generations,
            shards,
            config_shards: state.shards,
            clock: AtomicU64::new(clock),
            max_cached_rows: AtomicUsize::new(cap),
            batch_threads: state.batch_threads,
            sink: RwLock::new(None),
            pair_evals: AtomicU64::new(0),
            schema_removes: AtomicU64::new(0),
            schema_replaces: AtomicU64::new(0),
            salvage_events: AtomicU64::new(0),
        }
    }

    /// Total label profiles ever built — the label-level work counter.
    pub fn profile_builds(&self) -> u64 {
        self.profile_builds.load(Relaxed)
    }

    /// Total (query, label) kernel evaluations ever run — the pair-level
    /// work counter the store-reuse tests assert on.
    pub fn pair_evals(&self) -> u64 {
        self.pair_evals.load(Relaxed)
    }
}

impl Default for LabelStore {
    fn default() -> Self {
        LabelStore::new()
    }
}

impl Clone for LabelStore {
    fn clone(&self) -> Self {
        // Hold every shard's exclusive lock (index order — the store's
        // one multi-lock order) while snapshotting rows *and* counters:
        // hit-path counter updates happen under the shared lock, so a
        // read-lock clone could freeze `row_lookups` between a peer's
        // paired increments and break the counters invariant.
        let guards: Vec<_> = self.shards.iter().map(|s| s.rows.write()).collect();
        let shards: Box<[Shard]> = self
            .shards
            .iter()
            .zip(&guards)
            .map(|(shard, rows)| Shard {
                rows: RwLock::new((**rows).clone()),
                partial_rows: RwLock::new(shard.partial_rows.read().clone()),
                counters: shard.counters.detach(),
            })
            .collect();
        drop(guards);
        LabelStore {
            interner: self.interner.clone(),
            profiles: self.profiles.clone(),
            prefix_hashes: self.prefix_hashes.clone(),
            schema_labels: self.schema_labels.clone(),
            label_schemas: self.label_schemas.clone(),
            index: self.index.clone(),
            filters: self.filters.clone(),
            removed: self.removed.clone(),
            generations: self.generations.clone(),
            shards,
            config_shards: self.config_shards,
            clock: AtomicU64::new(self.clock.load(Relaxed)),
            max_cached_rows: AtomicUsize::new(self.max_cached_rows.load(Relaxed)),
            batch_threads: self.batch_threads,
            sink: RwLock::new(self.sink.read().clone()),
            profile_builds: AtomicU64::new(self.profile_builds.load(Relaxed)),
            pair_evals: AtomicU64::new(self.pair_evals.load(Relaxed)),
            schema_removes: AtomicU64::new(self.schema_removes.load(Relaxed)),
            schema_replaces: AtomicU64::new(self.schema_replaces.load(Relaxed)),
            salvage_events: AtomicU64::new(self.salvage_events.load(Relaxed)),
        }
    }
}

impl std::fmt::Debug for LabelStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LabelStore")
            .field("labels", &self.profiles.len())
            .field("schemas", &self.schema_labels.len())
            .field("live_schemas", &self.live_schema_count())
            .field("cached_rows", &self.cached_rows())
            .field(
                "partial_rows",
                &self
                    .shards
                    .iter()
                    .map(|s| s.partial_rows.read().len())
                    .sum::<usize>(),
            )
            .field("shards", &self.shards.len())
            .field("config", &self.config())
            .field("kernel_variant", &KernelVariant::active())
            .field("counters", &self.counters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::Repository;
    use smx_text::NameSimilarity;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    fn repo() -> Repository {
        let mut r = Repository::new();
        r.add(
            SchemaBuilder::new("bib")
                .root("bib")
                .child("book", |b| b.leaf("title", PrimitiveType::String))
                .build(),
        );
        r.add(
            SchemaBuilder::new("shop")
                .root("shop")
                .leaf("title", PrimitiveType::String) // duplicate label
                .build(),
        );
        r
    }

    #[test]
    fn ingest_builds_profiles_once_per_distinct_label() {
        let r = repo();
        let store = r.store();
        // bib, book, title, shop — "title" recurs but is built once.
        assert_eq!(store.len(), 4);
        assert_eq!(store.profile_builds(), 4);
        assert_eq!(store.schema_labels(SchemaId(0)).len(), 3);
        assert_eq!(store.schema_labels(SchemaId(1)).len(), 2);
        // Column map resolves to node names.
        let labels = store.schema_labels(SchemaId(1));
        assert_eq!(store.interner().resolve(labels[1]), "title");
        assert_eq!(store.profile(labels[1]).raw(), "title");
    }

    #[test]
    fn score_rows_match_scalar_distance_bitwise() {
        let r = repo();
        let store = r.store();
        let scalar = NameSimilarity::default();
        for query in ["title", "bookTitle", "", "shop"] {
            let row = store.score_row(query);
            assert_eq!(row.len(), store.len());
            for id in 0..store.len() {
                let label = store.interner().resolve(LabelId(id as u32));
                assert_eq!(
                    row[id].to_bits(),
                    scalar.distance(query, label).to_bits(),
                    "{query:?} vs {label:?}"
                );
            }
        }
    }

    #[test]
    fn repeated_queries_reuse_cached_rows() {
        let r = repo();
        let store = r.store();
        let first = store.score_row("orderTitle");
        let evals = store.pair_evals();
        assert_eq!(evals, store.len() as u64);
        let second = store.score_row("orderTitle");
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(store.pair_evals(), evals, "repeat query re-evaluated pairs");
        assert_eq!(store.cached_rows(), 1);
        let c = store.counters();
        assert_eq!(c.row_hits, 1);
        assert_eq!(c.row_misses, 1);
        assert_eq!(c.row_lookups, 2);
        assert_eq!(c.row_evictions, 0);
    }

    #[test]
    fn rows_extend_incrementally_after_add() {
        let mut r = repo();
        let stale = r.store().score_row("title");
        let evals_before = r.store().pair_evals();
        r.add(
            SchemaBuilder::new("extra")
                .root("warehouse")
                .leaf("isbn", PrimitiveType::String)
                .build(),
        );
        let store = r.store();
        assert_eq!(store.len(), 6);
        let extended = store.score_row("title");
        // Only the two new labels were evaluated...
        assert_eq!(store.pair_evals(), evals_before + 2);
        // ...and the extended row equals a from-scratch sweep.
        store.clear_rows();
        let fresh = store.score_row("title");
        assert_eq!(extended.len(), fresh.len());
        for (a, b) in extended.iter().zip(fresh.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(&extended[..stale.len()], &stale[..]);
    }

    #[test]
    fn clone_detaches_counters_but_shares_values() {
        let r = repo();
        r.store().score_row("title");
        let cloned = r.clone();
        // The clone shares the Arc'd store, so the cached row survives.
        assert_eq!(cloned.store().cached_rows(), 1);
        // Mutating the clone (add) detaches it via make_mut; the original
        // keeps its own counters.
        let mut cloned = cloned;
        cloned.add(SchemaBuilder::new("x").root("y").build());
        assert_eq!(cloned.store().len(), r.store().len() + 1);
        assert_eq!(r.store().cached_rows(), 1);
    }

    #[test]
    fn batched_rows_equal_individual_rows_bitwise() {
        let batched = repo();
        let individual = repo();
        let queries = [
            "title",
            "orderNo",
            "title",
            "bookTitle",
            "",
            "shop",
            "orderNo",
        ];
        let rows = batched.store().score_rows(&queries);
        assert_eq!(rows.len(), queries.len());
        for (&q, row) in queries.iter().zip(&rows) {
            let alone = individual.store().score_row(q);
            assert_eq!(row.len(), alone.len(), "{q:?}");
            for (a, b) in row.iter().zip(alone.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{q:?}");
            }
        }
        // Duplicates in the batch share one sweep: 5 distinct queries.
        assert_eq!(
            batched.store().pair_evals(),
            5 * batched.store().len() as u64
        );
        let c = batched.store().counters();
        assert_eq!(c.row_misses, 5);
        assert_eq!(c.row_hits, 2, "duplicate batch entries count as hits");
        assert_eq!(c.row_lookups, 7);
        assert_eq!(c.row_hits + c.row_misses, c.row_lookups);
    }

    #[test]
    fn parallel_sweep_equals_sequential_sweep_bitwise() {
        // Enough labels and queries to clear PARALLEL_SWEEP_MIN_PAIRS.
        let build = |threads: usize| {
            let mut r = Repository::with_store_config(StoreConfig {
                max_cached_rows: None,
                batch_threads: threads,
                shards: 0,
            });
            let mut b = SchemaBuilder::new("wide").root("container");
            for i in 0..300 {
                b = b.leaf(
                    format!("field_{i}_{}", "x".repeat(i % 17)),
                    PrimitiveType::String,
                );
            }
            r.add(b.build());
            r
        };
        let seq = build(1);
        let par = build(4);
        let queries: Vec<String> = (0..8).map(|i| format!("queryLabel{i}")).collect();
        let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
        assert!(refs.len() * seq.store().len() >= PARALLEL_SWEEP_MIN_PAIRS);
        let a = seq.store().score_rows(&refs);
        let b = par.store().score_rows(&refs);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.len(), rb.len());
            for (x, y) in ra.iter().zip(rb.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(seq.store().pair_evals(), par.store().pair_evals());
    }

    #[test]
    fn subset_rows_match_full_rows_bitwise_and_count_separately() {
        let r = repo();
        let store = r.store();
        let n = store.len();
        let cols = [0usize, 2];
        // Cold subset: only the requested columns are evaluated.
        let rows = store.score_rows_subset(&["orderTitle", "bookIsbn"], &cols);
        assert_eq!(store.pair_evals(), 2 * cols.len() as u64);
        let c = store.counters();
        assert_eq!(c.partial_row_fills, 2);
        assert_eq!(c.candidate_hits, 0);
        assert_eq!(c.candidate_pruned, 2 * (n - cols.len()) as u64);
        // Full-row path untouched: no lookups, hits, or misses counted.
        assert_eq!(c.row_lookups, 0);
        assert_eq!(c.row_hits + c.row_misses, c.row_lookups);
        assert_eq!(store.cached_rows(), 0, "partials never enter the row cache");
        let scalar = NameSimilarity::default();
        for (q, row) in ["orderTitle", "bookIsbn"].iter().zip(&rows) {
            for &col in &cols {
                let label = store.interner().resolve(LabelId(col as u32));
                assert_eq!(
                    row[col].to_bits(),
                    scalar.distance(q, label).to_bits(),
                    "{q:?} vs {label:?}"
                );
            }
        }
        // Repeat subset: served from the partial row, zero kernel work.
        let evals = store.pair_evals();
        store.score_rows_subset(&["orderTitle"], &cols);
        assert_eq!(store.pair_evals(), evals);
        assert_eq!(store.counters().candidate_hits, cols.len() as u64);
        // Widening the subset computes only the new column.
        store.score_rows_subset(&["orderTitle"], &[0, 1, 2]);
        assert_eq!(store.pair_evals(), evals + 1);
        // The full row afterwards is still computed from scratch,
        // bitwise identical — partials never poison the full path.
        let full = store.score_row("orderTitle");
        assert_eq!(store.pair_evals(), evals + 1 + n as u64);
        for (id, d) in full.iter().enumerate() {
            let label = store.interner().resolve(LabelId(id as u32));
            assert_eq!(d.to_bits(), scalar.distance("orderTitle", label).to_bits());
        }
        // And once a full row exists, it serves any subset for free.
        let evals = store.pair_evals();
        let sub = store.score_rows_subset(&["orderTitle"], &[1, 3]);
        assert_eq!(store.pair_evals(), evals);
        assert!(Arc::ptr_eq(&sub[0], &full));
    }

    #[test]
    fn subset_rows_extend_after_add_and_clear_with_clear_rows() {
        let mut r = repo();
        r.store().score_rows_subset(&["title"], &[0, 1]);
        r.add(
            SchemaBuilder::new("extra")
                .root("warehouse")
                .leaf("isbn", PrimitiveType::String)
                .build(),
        );
        let store = r.store();
        // Columns past the old width are simply uncovered: requesting
        // them computes exactly the missing ones.
        let evals = store.pair_evals();
        let row = store.score_rows_subset(&["title"], &[0, 1, 5]);
        assert_eq!(store.pair_evals(), evals + 1);
        let scalar = NameSimilarity::default();
        let label = store.interner().resolve(LabelId(5));
        assert_eq!(
            row[0][5].to_bits(),
            scalar.distance("title", label).to_bits()
        );
        store.clear_rows();
        let evals = store.pair_evals();
        store.score_rows_subset(&["title"], &[0]);
        assert_eq!(store.pair_evals(), evals + 1, "clear_rows drops partials");
    }

    #[test]
    fn filter_index_tracks_ingest_and_bounds_admissibly() {
        let mut r = repo();
        assert_eq!(r.store().filter_index().len(), r.store().len());
        r.add(
            SchemaBuilder::new("extra")
                .root("warehouse")
                .leaf("isbn", PrimitiveType::String)
                .build(),
        );
        let store = r.store();
        assert_eq!(store.filter_index().len(), store.len());
        let scalar = NameSimilarity::default();
        let mut out = Vec::new();
        for q in ["title", "warehouse", "bookIsbn", ""] {
            store.similarity_upper_bounds(&QueryFilter::new(q), &mut out);
            assert_eq!(out.len(), store.len());
            for (id, &bound) in out.iter().enumerate() {
                let label = store.interner().resolve(LabelId(id as u32));
                assert!(
                    bound >= scalar.similarity(q, label),
                    "bound {bound} below oracle for ({q:?}, {label:?})"
                );
            }
        }
        // A stored query's own label is bounded at exactly 1.0.
        store.similarity_upper_bounds(&QueryFilter::new("title"), &mut out);
        let title = store.interner().get("title").expect("interned");
        assert_eq!(out[title.index()], 1.0);
    }

    #[test]
    fn lru_bound_evicts_least_recently_used() {
        let r = repo();
        let store = r.store();
        store.set_max_cached_rows(Some(2));
        store.score_row("alpha");
        store.score_row("beta");
        // Touch alpha so beta becomes the oldest.
        store.score_row("alpha");
        store.score_row("gamma");
        assert_eq!(store.cached_rows(), 2);
        assert!(store.has_cached_row("alpha"));
        assert!(store.has_cached_row("gamma"));
        assert!(
            !store.has_cached_row("beta"),
            "LRU must evict the oldest row"
        );
        let c = store.counters();
        assert_eq!(c.row_evictions, 1);
        // Evicted rows recompute to bitwise-identical values.
        let scalar = NameSimilarity::default();
        let again = store.score_row("beta");
        for (id, d) in again.iter().enumerate() {
            let label = store.interner().resolve(LabelId(id as u32));
            assert_eq!(d.to_bits(), scalar.distance("beta", label).to_bits());
        }
    }

    #[test]
    fn tightening_the_bound_evicts_immediately() {
        let r = repo();
        let store = r.store();
        for q in ["a", "b", "c", "d"] {
            store.score_row(q);
        }
        assert_eq!(store.cached_rows(), 4);
        store.set_max_cached_rows(Some(1));
        assert_eq!(store.cached_rows(), 1);
        assert_eq!(store.counters().row_evictions, 3);
        assert!(store.has_cached_row("d"), "most recent row survives");
        // Removing the bound lets the cache grow again.
        store.set_max_cached_rows(None);
        store.score_row("e");
        store.score_row("f");
        assert_eq!(store.cached_rows(), 3);
        assert_eq!(store.config(), StoreConfig::default());
    }

    /// In-memory [`EvictionSink`] double: spilled rows land in a map.
    #[derive(Default)]
    struct MemorySink {
        spilled: parking_lot::Mutex<HashMap<String, (Vec<f64>, u64)>>,
    }

    impl EvictionSink for MemorySink {
        fn on_evict(&self, query: &str, row: &[f64], labels_fingerprint: u64) -> bool {
            self.spilled
                .lock()
                .insert(query.to_owned(), (row.to_vec(), labels_fingerprint));
            true
        }

        fn recover(&self, query: &str) -> Option<(Vec<f64>, u64)> {
            self.spilled.lock().get(query).cloned()
        }
    }

    #[test]
    fn evicted_rows_spill_and_fault_back_without_recompute() {
        let r = repo();
        let store = r.store();
        let sink = Arc::new(MemorySink::default());
        store.set_eviction_sink(Some(Arc::clone(&sink) as Arc<dyn EvictionSink>));
        assert!(store.has_eviction_sink());
        store.set_max_cached_rows(Some(1));
        let first = store.score_row("alpha");
        store.score_row("beta"); // evicts alpha → spilled
        assert_eq!(sink.spilled.lock().len(), 1);
        let evals = store.pair_evals();
        let again = store.score_row("alpha"); // faults back from the sink
        assert_eq!(
            store.pair_evals(),
            evals,
            "recovered row must not re-evaluate pairs"
        );
        assert_eq!(first.len(), again.len());
        for (a, b) in first.iter().zip(again.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let c = store.counters();
        assert_eq!(c.row_spills, 2, "alpha and then beta were spilled");
        assert_eq!(c.row_spill_recoveries, 1);
        assert_eq!(c.row_hits + c.row_misses, c.row_lookups);
    }

    #[test]
    fn spilled_prefix_extends_after_add() {
        let mut r = repo();
        r.store()
            .set_eviction_sink(Some(Arc::new(MemorySink::default())));
        r.store().set_max_cached_rows(Some(1));
        r.store().score_row("alpha");
        r.store().score_row("beta"); // alpha spilled at the old length
        r.add(
            SchemaBuilder::new("extra")
                .root("warehouse")
                .leaf("isbn", PrimitiveType::String)
                .build(),
        );
        let store = r.store();
        let evals = store.pair_evals();
        let row = store.score_row("alpha"); // prefix from sink + 2-column tail
        assert_eq!(
            store.pair_evals(),
            evals + 2,
            "only the new columns are swept"
        );
        assert_eq!(store.counters().row_spill_recoveries, 1);
        store.set_eviction_sink(None);
        store.clear_rows();
        let fresh = store.score_row("alpha");
        assert_eq!(row.len(), fresh.len());
        for (a, b) in row.iter().zip(fresh.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn diverged_clones_reject_each_others_spilled_rows() {
        // Two repository clones share the sink installed before they
        // diverge; after divergence their label lists differ, so a row
        // one lineage spilled must never be served by the other.
        let mut r1 = repo();
        r1.store()
            .set_eviction_sink(Some(Arc::new(MemorySink::default())));
        r1.store().set_max_cached_rows(Some(1));
        let mut r2 = r1.clone();
        r1.add(
            SchemaBuilder::new("a")
                .root("host")
                .leaf("lineageOne", PrimitiveType::String)
                .build(),
        );
        r2.add(
            SchemaBuilder::new("b")
                .root("host")
                .leaf("lineageTwo", PrimitiveType::String)
                .build(),
        );
        assert_eq!(
            r1.store().len(),
            r2.store().len(),
            "equal lengths, different labels"
        );
        // r1 computes and spills "query" (full length, r1's labels).
        r1.store().score_row("query");
        r1.store().score_row("evictor");
        // r2 misses "query": the shared sink holds r1's row of equal
        // length, but the fingerprint mismatch forces a recompute.
        let row = r2.store().score_row("query");
        assert_eq!(
            r2.store().counters().row_spill_recoveries,
            0,
            "a diverged lineage's spilled row must be rejected"
        );
        let scalar = NameSimilarity::default();
        for (id, d) in row.iter().enumerate() {
            let label = r2.store().interner().resolve(LabelId(id as u32));
            assert_eq!(
                d.to_bits(),
                scalar.distance("query", label).to_bits(),
                "{label:?}"
            );
        }
        // Same-lineage recovery still works: r1 faults its own row back.
        let evals = r1.store().pair_evals();
        r1.store().score_row("query");
        assert_eq!(
            r1.store().pair_evals(),
            evals,
            "own spilled row must fault back"
        );
    }

    #[test]
    fn export_import_round_trips_hot_state() {
        let mut r = repo();
        let store = r.store();
        store.score_row("orderTitle");
        store.score_row("title");
        store.score_row("orderTitle"); // refresh: title is now the LRU row
        let state = store.export_state();
        assert_eq!(state.labels.len(), store.len());
        assert_eq!(state.rows.len(), 2);
        assert_eq!(
            state.rows[0].0, "title",
            "rows export least recently used first"
        );
        let imported = LabelStore::import_state(state.clone());
        assert_eq!(imported.len(), store.len());
        assert_eq!(imported.cached_rows(), 2);
        assert_eq!(imported.profile_builds(), store.len() as u64);
        for id in 0..store.len() {
            let id = LabelId(id as u32);
            assert_eq!(
                imported.interner().resolve(id),
                store.interner().resolve(id)
            );
        }
        for sid in [SchemaId(0), SchemaId(1)] {
            assert_eq!(imported.schema_labels(sid), store.schema_labels(sid));
        }
        assert_eq!(
            imported.token_index().postings().count(),
            store.token_index().postings().count()
        );
        // Restored rows serve bitwise-identically with zero pair evals.
        for query in ["orderTitle", "title"] {
            let a = store.score_row(query);
            let b = imported.score_row(query);
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{query:?}");
            }
        }
        assert_eq!(
            imported.pair_evals(),
            0,
            "imported rows must be served from cache"
        );
        // LRU order survives the round-trip: under a cap of 1, the
        // *least* recently used row ("title") is the one dropped.
        let mut tight = state;
        tight.max_cached_rows = Some(1);
        let bounded = LabelStore::import_state(tight);
        assert_eq!(bounded.cached_rows(), 1);
        assert!(bounded.has_cached_row("orderTitle"));
        assert!(!bounded.has_cached_row("title"));
        // And the imported store keeps growing incrementally.
        r.add(SchemaBuilder::new("x").root("brandNew").build());
    }

    #[test]
    fn zero_capacity_store_still_answers_correctly() {
        let r = repo();
        let store = r.store();
        store.set_max_cached_rows(Some(0));
        let scalar = NameSimilarity::default();
        for _ in 0..2 {
            let row = store.score_row("title");
            assert_eq!(store.cached_rows(), 0);
            for (id, d) in row.iter().enumerate() {
                let label = store.interner().resolve(LabelId(id as u32));
                assert_eq!(d.to_bits(), scalar.distance("title", label).to_bits());
            }
        }
        // Every lookup misses and every insert is immediately evicted.
        let c = store.counters();
        assert_eq!(c.row_misses, 2);
        assert_eq!(c.row_evictions, 2);
        assert_eq!(c.pair_evals, 2 * store.len() as u64);
    }

    /// A wider repository so queries actually spread across shards.
    fn wide_repo(config: StoreConfig) -> (Repository, Vec<String>) {
        let mut r = Repository::with_store_config(config);
        let mut b = SchemaBuilder::new("wide").root("container");
        for i in 0..24 {
            b = b.leaf(format!("field{i}Value"), PrimitiveType::String);
        }
        r.add(b.build());
        let queries: Vec<String> = (0..16).map(|i| format!("query{i}Label")).collect();
        (r, queries)
    }

    #[test]
    fn shard_count_resolves_to_power_of_two() {
        for (configured, expect) in [(1, 1), (2, 2), (3, 4), (5, 8), (16, 16), (64, 64)] {
            let store = LabelStore::with_config(StoreConfig {
                max_cached_rows: None,
                batch_threads: 1,
                shards: configured,
            });
            assert_eq!(store.shard_count(), expect, "configured {configured}");
            // The *configured* value round-trips; only the live layout
            // is resolved.
            assert_eq!(store.config().shards, configured);
        }
        let auto = LabelStore::with_config(StoreConfig::default());
        assert!(auto.shard_count().is_power_of_two());
        assert!(auto.shard_count() <= MAX_SHARDS);
        // Oversized requests clamp before rounding.
        let huge = LabelStore::with_config(StoreConfig {
            max_cached_rows: None,
            batch_threads: 1,
            shards: 1000,
        });
        assert_eq!(huge.shard_count(), MAX_SHARDS);
    }

    #[test]
    fn sharded_store_matches_single_shard_bitwise_with_identical_counters() {
        let config = |shards: usize| StoreConfig {
            max_cached_rows: None,
            batch_threads: 1,
            shards,
        };
        let (single, queries) = wide_repo(config(1));
        let (sharded, _) = wide_repo(config(8));
        assert_eq!(sharded.store().shard_count(), 8);
        let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
        // Batched fill, then a full re-read (all hits), on both stores.
        let a = single.store().score_rows(&refs);
        let b = sharded.store().score_rows(&refs);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.len(), rb.len());
            for (x, y) in ra.iter().zip(rb.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        let _ = single.store().score_rows(&refs);
        let _ = sharded.store().score_rows(&refs);
        // Rows spread over several shards, yet the merged counters are
        // identical to the single-lock store's.
        let populated = (0..sharded.store().shard_count())
            .filter(|&s| sharded.store().shard_cached_rows(s) > 0)
            .count();
        assert!(populated > 1, "16 queries landed in one shard");
        let (ca, cb) = (single.store().counters(), sharded.store().counters());
        assert_eq!(ca, cb);
        assert_eq!(cb.row_lookups, 32);
        assert_eq!(cb.row_misses, 16);
        assert_eq!(cb.row_hits, 16);
        assert_eq!(cb.row_hits + cb.row_misses, cb.row_lookups);
        assert_eq!(single.store().cached_rows(), sharded.store().cached_rows());
    }

    #[test]
    fn lru_eviction_is_globally_exact_across_shards() {
        // The bound is a *global* LRU: with 8 shards and capacity 2,
        // the globally least-recently-used row is evicted no matter
        // which shard it lives in — same observable behaviour as the
        // single-shard store.
        let (r, _) = wide_repo(StoreConfig {
            max_cached_rows: Some(2),
            batch_threads: 1,
            shards: 8,
        });
        let store = r.store();
        let _ = store.score_row("alphaField");
        let _ = store.score_row("betaField");
        let _ = store.score_row("alphaField"); // refresh alpha
        let _ = store.score_row("gammaField"); // must evict beta
        assert_eq!(store.cached_rows(), 2);
        assert!(store.has_cached_row("alphaField"));
        assert!(store.has_cached_row("gammaField"));
        assert!(!store.has_cached_row("betaField"));
        assert_eq!(store.counters().row_evictions, 1);
    }

    #[test]
    fn remove_schema_strips_postings_and_tombstones_slot() {
        let mut r = repo();
        let sid = SchemaId(0);
        assert_eq!(r.live_schemas(), 2);
        assert!(!r.token_index().lookup("book").is_empty());
        assert!(r.remove_schema(sid));
        assert!(!r.remove_schema(sid), "double remove must report false");
        assert!(r.is_removed(sid));
        assert_eq!(r.live_schemas(), 1);
        assert_eq!(r.len(), 2, "slot stays — ids remain stable");
        assert_eq!(r.schema(sid).len(), 0, "tombstone is an empty schema");
        // "book"/"bib" only appeared in schema 0 — their postings are
        // gone; "title" survives via schema 1.
        assert!(r.token_index().lookup("book").is_empty());
        assert!(r.token_index().lookup("bib").is_empty());
        assert_eq!(r.token_index().lookup("title").len(), 1);
        let store = r.store();
        assert!(store.schema_labels(sid).is_empty());
        // Labels are append-only: "bib" and "book" are orphaned, not
        // dropped — cached rows keep their exact width.
        assert_eq!(store.len(), 4);
        assert_eq!(store.orphaned_labels(), 2);
        assert_eq!(store.schema_generation(sid), 1);
        assert_eq!(store.counters().schema_removes, 1);
    }

    #[test]
    fn removal_never_invalidates_cached_rows() {
        let mut r = repo();
        let before = r.store().score_row("title");
        let evals = r.store().pair_evals();
        r.remove_schema(SchemaId(0));
        // The cached row is untouched — same Arc, no re-evaluation.
        let after = r.store().score_row("title");
        assert!(Arc::ptr_eq(&before, &after));
        assert_eq!(r.store().pair_evals(), evals);
    }

    #[test]
    fn replace_schema_reingests_under_same_id() {
        let mut r = repo();
        let sid = SchemaId(1);
        assert!(r.replace_schema(
            sid,
            SchemaBuilder::new("shop2")
                .root("warehouse")
                .leaf("orderLine", PrimitiveType::String)
                .build(),
        ));
        assert!(!r.is_removed(sid));
        assert_eq!(r.live_schemas(), 2);
        assert_eq!(r.schema(sid).name(), "shop2");
        // New tokens indexed, old ones gone.
        assert_eq!(r.token_index().lookup("warehouse").len(), 1);
        assert!(r
            .token_index()
            .lookup("shop")
            .iter()
            .all(|e| e.schema != sid));
        let store = r.store();
        // remove + reingest = two generation bumps.
        assert_eq!(store.schema_generation(sid), 2);
        assert_eq!(store.counters().schema_replaces, 1);
        assert_eq!(store.counters().schema_removes, 1);
        // The column map resolves the new labels.
        let labels = store.schema_labels(sid);
        assert_eq!(store.interner().resolve(labels[0]), "warehouse");
        assert_eq!(store.interner().resolve(labels[1]), "orderLine");
    }

    #[test]
    fn mutated_repository_matches_fresh_rebuild() {
        // Remove + replace, then compare every derived structure against
        // a repository built from scratch with the same final schemas
        // (tombstoned slots as empty placeholder schemas).
        let mut mutated = repo();
        mutated.add(
            SchemaBuilder::new("extra")
                .root("warehouse")
                .leaf("isbn", PrimitiveType::String)
                .build(),
        );
        mutated.remove_schema(SchemaId(0));
        mutated.replace_schema(
            SchemaId(1),
            SchemaBuilder::new("shop2")
                .root("orderDepot")
                .leaf("orderTitle", PrimitiveType::String)
                .build(),
        );
        let mut fresh = Repository::new();
        for sid in mutated.schema_ids() {
            if mutated.is_removed(sid) {
                fresh.add(Schema::new(""));
            } else {
                fresh.add(mutated.schema(sid).clone());
            }
        }
        // Token postings identical to the rebuild (sorted insert = the
        // incremental-equals-rebuild contract under mutation)...
        for tok in fresh.token_index().tokens() {
            assert_eq!(
                mutated.token_index().lookup(tok),
                fresh.token_index().lookup(tok),
                "{tok}"
            );
        }
        assert_eq!(
            mutated.token_index().vocabulary_size(),
            fresh.token_index().vocabulary_size()
        );
        // ...column maps resolve to identical label text...
        for sid in mutated.schema_ids() {
            let (ms, fs) = (mutated.store(), fresh.store());
            let names = |store: &LabelStore, sid| {
                store
                    .schema_labels(sid)
                    .iter()
                    .map(|&l| store.interner().resolve(l).to_owned())
                    .collect::<Vec<_>>()
            };
            assert_eq!(names(ms, sid), names(fs, sid), "{sid}");
        }
        // ...and scoring agrees bitwise wherever both vocabularies
        // overlap (the mutated store keeps orphaned labels; the fresh
        // one never interned them — compare via each store's own
        // labels).
        let m_row = mutated.store().score_row("orderTitle");
        let f_row = fresh.store().score_row("orderTitle");
        let m = mutated.store();
        let f = fresh.store();
        for (fid, d) in f_row.iter().enumerate() {
            let label = f.interner().resolve(LabelId(fid as u32));
            let mid = m.interner().get(label).expect("label in mutated store");
            assert_eq!(m_row[mid.index()].to_bits(), d.to_bits(), "{label}");
        }
    }
}

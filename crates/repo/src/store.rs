//! The repository-resident label score store.
//!
//! A production repository answers many matching queries; per-query work
//! should touch only what is new about the query. The store keeps, *on
//! the repository itself* and maintained **incrementally on every
//! [`Repository::add`](crate::Repository::add)**:
//!
//! * the [`LabelInterner`] over every distinct element name,
//! * one [`LabelProfile`] per distinct label — the row kernel's
//!   pair-independent preprocessing (normalised form, token profiles,
//!   Myers pattern table, flat trigram profile), built exactly once, at
//!   ingest,
//! * per-schema label ids in arena order (the cost-matrix column map),
//! * the incremental [`TokenIndex`],
//! * a **score-row cache**: for each query label already seen, the dense
//!   vector of name *distances* to every stored label, computed by one
//!   [`RowKernel`] sweep and reused by every later query.
//!
//! Adding a schema appends: new distinct labels get profiles, postings
//! are appended, and cached score rows stay valid — they simply cover a
//! prefix of the grown label list and are *extended* (only the new
//! columns are evaluated) the next time they are requested. Nothing is
//! ever rebuilt from scratch.
//!
//! # Score-identity contract
//!
//! [`LabelStore::score_row`] values are bitwise identical to
//! `NameSimilarity::default().distance(query, label)` — the row kernel
//! guarantees it (see `smx_text::kernel`). The matching crate's
//! `CostMatrix` fills from these rows and stays bitwise equal to direct
//! objective evaluation, which is what `tests/score_identity.rs` in
//! `smx-match` gates on.

use crate::index::TokenIndex;
use crate::intern::{LabelId, LabelInterner};
use crate::repository::SchemaId;
use parking_lot::RwLock;
use smx_text::{LabelProfile, RowKernel};
use smx_xml::Schema;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Interner, per-label profiles, token index, and cached score rows for
/// one repository. Obtained via
/// [`Repository::store`](crate::Repository::store).
pub struct LabelStore {
    interner: LabelInterner,
    /// `profiles[id.index()]` is the profile of `interner.resolve(id)`.
    profiles: Vec<LabelProfile>,
    /// Per schema (by id), the label of each node in arena order.
    schema_labels: Vec<Vec<LabelId>>,
    index: TokenIndex,
    /// Query label → distances to the first `row.len()` stored labels.
    /// Rows are append-consistent: label ids are stable, so a short row
    /// is a valid prefix and only its tail needs computing after adds.
    rows: RwLock<HashMap<String, Arc<Vec<f64>>>>,
    /// How many label profiles were ever built (label-level work).
    profile_builds: AtomicU64,
    /// How many (query, label) kernel evaluations were ever run
    /// (pair-level work). Repeated queries must not move this.
    pair_evals: AtomicU64,
}

impl LabelStore {
    /// An empty store.
    pub fn new() -> Self {
        LabelStore {
            interner: LabelInterner::new(),
            profiles: Vec::new(),
            schema_labels: Vec::new(),
            index: TokenIndex::default(),
            rows: RwLock::new(HashMap::new()),
            profile_builds: AtomicU64::new(0),
            pair_evals: AtomicU64::new(0),
        }
    }

    /// Ingest one schema: intern its labels (building profiles only for
    /// labels never seen before), record its column map, append its
    /// token postings. Called by `Repository::add` with the id the
    /// schema gets; ids must arrive densely in order.
    pub(crate) fn add_schema(&mut self, sid: SchemaId, schema: &Schema) {
        debug_assert_eq!(sid.index(), self.schema_labels.len());
        let known = self.interner.len();
        let labels = self.interner.intern_schema(schema);
        for id in known..self.interner.len() {
            self.profiles.push(LabelProfile::new(self.interner.resolve(LabelId(id as u32))));
        }
        self.profile_builds.fetch_add((self.interner.len() - known) as u64, Relaxed);
        self.schema_labels.push(labels);
        self.index.add_schema(sid, schema);
    }

    /// The interner over every distinct label in the repository.
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// Number of distinct labels stored.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether no labels are stored.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The profile of one stored label.
    pub fn profile(&self, id: LabelId) -> &LabelProfile {
        &self.profiles[id.index()]
    }

    /// Per-node label ids of `sid`, arena order — the column map a cost
    /// matrix indexes score rows with.
    pub fn schema_labels(&self, sid: SchemaId) -> &[LabelId] {
        &self.schema_labels[sid.index()]
    }

    /// The incremental token inverted index.
    pub fn token_index(&self) -> &TokenIndex {
        &self.index
    }

    /// The dense distance row of `query` against every stored label:
    /// `row[id.index()] == NameSimilarity::default().distance(query,
    /// label)`, bitwise (computed by a [`RowKernel`] sweep).
    ///
    /// Rows are cached per distinct query label. A repeated query — the
    /// same personal label in a later `MatchProblem` against this
    /// repository — returns the cached row without evaluating a single
    /// pair. After new schemas were added, a cached row is extended:
    /// only distances to the *new* labels are computed.
    pub fn score_row(&self, query: &str) -> Arc<Vec<f64>> {
        let n = self.profiles.len();
        let cached = self.rows.read().get(query).cloned();
        if let Some(row) = &cached {
            if row.len() == n {
                return Arc::clone(row);
            }
        }
        // Miss or stale prefix: sweep (the tail of) the label row through
        // a kernel built once for this query. Concurrent fillers may race
        // here; they compute identical values, so last-write-wins is fine.
        let kernel = RowKernel::new(query);
        let mut row: Vec<f64> = Vec::with_capacity(n);
        if let Some(prefix) = &cached {
            row.extend_from_slice(prefix);
        }
        let start = row.len();
        kernel.distances_into(&self.profiles[start..], &mut row);
        self.pair_evals.fetch_add((n - start) as u64, Relaxed);
        let row = Arc::new(row);
        self.rows.write().insert(query.to_owned(), Arc::clone(&row));
        row
    }

    /// Number of query labels with a cached score row.
    pub fn cached_rows(&self) -> usize {
        self.rows.read().len()
    }

    /// Drop every cached score row (profiles and index stay). Benches
    /// use this to measure a genuinely cold fill.
    pub fn clear_rows(&self) {
        self.rows.write().clear();
    }

    /// Total label profiles ever built — the label-level work counter.
    pub fn profile_builds(&self) -> u64 {
        self.profile_builds.load(Relaxed)
    }

    /// Total (query, label) kernel evaluations ever run — the pair-level
    /// work counter the store-reuse tests assert on.
    pub fn pair_evals(&self) -> u64 {
        self.pair_evals.load(Relaxed)
    }
}

impl Default for LabelStore {
    fn default() -> Self {
        LabelStore::new()
    }
}

impl Clone for LabelStore {
    fn clone(&self) -> Self {
        LabelStore {
            interner: self.interner.clone(),
            profiles: self.profiles.clone(),
            schema_labels: self.schema_labels.clone(),
            index: self.index.clone(),
            rows: RwLock::new(self.rows.read().clone()),
            profile_builds: AtomicU64::new(self.profile_builds.load(Relaxed)),
            pair_evals: AtomicU64::new(self.pair_evals.load(Relaxed)),
        }
    }
}

impl std::fmt::Debug for LabelStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LabelStore")
            .field("labels", &self.profiles.len())
            .field("schemas", &self.schema_labels.len())
            .field("cached_rows", &self.cached_rows())
            .field("profile_builds", &self.profile_builds())
            .field("pair_evals", &self.pair_evals())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::Repository;
    use smx_text::NameSimilarity;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    fn repo() -> Repository {
        let mut r = Repository::new();
        r.add(
            SchemaBuilder::new("bib")
                .root("bib")
                .child("book", |b| b.leaf("title", PrimitiveType::String))
                .build(),
        );
        r.add(
            SchemaBuilder::new("shop")
                .root("shop")
                .leaf("title", PrimitiveType::String) // duplicate label
                .build(),
        );
        r
    }

    #[test]
    fn ingest_builds_profiles_once_per_distinct_label() {
        let r = repo();
        let store = r.store();
        // bib, book, title, shop — "title" recurs but is built once.
        assert_eq!(store.len(), 4);
        assert_eq!(store.profile_builds(), 4);
        assert_eq!(store.schema_labels(SchemaId(0)).len(), 3);
        assert_eq!(store.schema_labels(SchemaId(1)).len(), 2);
        // Column map resolves to node names.
        let labels = store.schema_labels(SchemaId(1));
        assert_eq!(store.interner().resolve(labels[1]), "title");
        assert_eq!(store.profile(labels[1]).raw(), "title");
    }

    #[test]
    fn score_rows_match_scalar_distance_bitwise() {
        let r = repo();
        let store = r.store();
        let scalar = NameSimilarity::default();
        for query in ["title", "bookTitle", "", "shop"] {
            let row = store.score_row(query);
            assert_eq!(row.len(), store.len());
            for id in 0..store.len() {
                let label = store.interner().resolve(LabelId(id as u32));
                assert_eq!(
                    row[id].to_bits(),
                    scalar.distance(query, label).to_bits(),
                    "{query:?} vs {label:?}"
                );
            }
        }
    }

    #[test]
    fn repeated_queries_reuse_cached_rows() {
        let r = repo();
        let store = r.store();
        let first = store.score_row("orderTitle");
        let evals = store.pair_evals();
        assert_eq!(evals, store.len() as u64);
        let second = store.score_row("orderTitle");
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(store.pair_evals(), evals, "repeat query re-evaluated pairs");
        assert_eq!(store.cached_rows(), 1);
    }

    #[test]
    fn rows_extend_incrementally_after_add() {
        let mut r = repo();
        let stale = r.store().score_row("title");
        let evals_before = r.store().pair_evals();
        r.add(
            SchemaBuilder::new("extra")
                .root("warehouse")
                .leaf("isbn", PrimitiveType::String)
                .build(),
        );
        let store = r.store();
        assert_eq!(store.len(), 6);
        let extended = store.score_row("title");
        // Only the two new labels were evaluated...
        assert_eq!(store.pair_evals(), evals_before + 2);
        // ...and the extended row equals a from-scratch sweep.
        store.clear_rows();
        let fresh = store.score_row("title");
        assert_eq!(extended.len(), fresh.len());
        for (a, b) in extended.iter().zip(fresh.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(&extended[..stale.len()], &stale[..]);
    }

    #[test]
    fn clone_detaches_counters_but_shares_values() {
        let r = repo();
        r.store().score_row("title");
        let cloned = r.clone();
        // The clone shares the Arc'd store, so the cached row survives.
        assert_eq!(cloned.store().cached_rows(), 1);
        // Mutating the clone (add) detaches it via make_mut; the original
        // keeps its own counters.
        let mut cloned = cloned;
        cloned.add(SchemaBuilder::new("x").root("y").build());
        assert_eq!(cloned.store().len(), r.store().len() + 1);
        assert_eq!(r.store().cached_rows(), 1);
    }
}

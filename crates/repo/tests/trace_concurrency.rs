//! The concurrent-sweep counter-consistency gate: with tracing enabled,
//! the site-gated metrics the store publishes into the global
//! [`smx_obs`] registry must agree *exactly* with the store's own
//! atomic [`StoreCounters`](smx_repo::StoreCounters) — even when many
//! threads hammer a tightly bounded cache and race on evictions. The
//! registry increment sits at the same site as the store counter, so
//! any drift would mean a lost or double-counted update.
//!
//! Tracing state is process-global; tests serialize on [`TRACE_LOCK`]
//! and restore the disabled state before returning.

use smx_repo::StoreConfig;
use smx_synth::strategies::{small_repository, LABEL_POOL};
use std::sync::{Mutex, MutexGuard};

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn reset_tracing() {
    smx_obs::set_enabled(false);
    smx_obs::set_recorder(None);
}

/// Many threads sweep a cache bounded far below the query working set,
/// forcing constant eviction races. Afterwards the store's own counter
/// snapshot must satisfy `hits + misses == lookups`, and the gated
/// registry counter must have moved by exactly the store's eviction
/// delta.
#[test]
fn concurrent_sweeps_keep_registry_and_store_counters_in_lockstep() {
    let _guard = guard();
    let repo = small_repository(StoreConfig {
        shards: 0,
        max_cached_rows: Some(2),
        batch_threads: 0,
    });

    let before = repo.store().counters();
    // The registry is process-global and other (serialized) tests may
    // have bumped it, so assert on deltas.
    let evictions_before = smx_obs::registry().counter("store.row_evictions").get();
    let collector = smx_obs::install_collector();

    std::thread::scope(|scope| {
        for t in 0..4usize {
            let repo = &repo;
            scope.spawn(move || {
                for round in 0..6usize {
                    for (i, query) in LABEL_POOL.iter().enumerate() {
                        if (i + t + round) % 2 == 0 {
                            let rows = repo.store().score_rows(&[query]);
                            assert_eq!(rows.len(), 1);
                        }
                    }
                }
            });
        }
    });
    reset_tracing();

    let after = repo.store().counters();
    assert_eq!(
        after.row_hits + after.row_misses,
        after.row_lookups,
        "lookup accounting drifted under concurrency"
    );
    assert!(
        after.row_evictions > before.row_evictions,
        "a cap-2 cache swept by {} labels must evict",
        LABEL_POOL.len()
    );
    let registry_delta =
        smx_obs::registry().counter("store.row_evictions").get() - evictions_before;
    assert_eq!(
        registry_delta,
        after.row_evictions - before.row_evictions,
        "gated registry counter diverged from StoreCounters under concurrent sweeps"
    );
    assert!(
        !collector.is_empty(),
        "traced sweeps emitted no store.score_rows spans"
    );
}

/// Sweep span attributes are **exact**, not approximations: each traced
/// `score_rows` call stamps the `rows_swept` / `pair_evals` its own call
/// computed (threaded through the core's per-call stats, not read back
/// from the shared counters), so summing the attrs over every span must
/// reproduce the store's counter deltas exactly — even with concurrent
/// sweeps interleaving on a bounded sharded cache.
#[test]
fn concurrent_span_attrs_sum_exactly_to_counter_deltas() {
    let _guard = guard();
    let repo = small_repository(StoreConfig {
        shards: 0,
        max_cached_rows: Some(2),
        batch_threads: 0,
    });

    let evals_before = repo.store().pair_evals();
    let misses_before = repo.store().counters().row_misses;
    let collector = smx_obs::install_collector();

    std::thread::scope(|scope| {
        for t in 0..4usize {
            let repo = &repo;
            scope.spawn(move || {
                for round in 0..4usize {
                    for (i, query) in LABEL_POOL.iter().enumerate() {
                        if (i + t + round) % 3 == 0 {
                            let rows = repo.store().score_rows(&[query]);
                            assert_eq!(rows.len(), 1);
                        }
                    }
                }
            });
        }
    });
    reset_tracing();

    let attr_sum = |key: &str| -> u64 {
        collector
            .snapshot()
            .iter()
            .filter(|s| s.name == "store.score_rows")
            .flat_map(|s| &s.attrs)
            .filter(|(k, _)| *k == key)
            .map(|(_, v)| match v {
                smx_obs::AttrValue::U64(n) => *n,
                other => panic!("attr {key} has non-u64 value {other:?}"),
            })
            .sum()
    };
    let counters = repo.store().counters();
    assert_eq!(
        attr_sum("rows_swept"),
        counters.row_misses - misses_before,
        "span rows_swept must sum exactly to rows actually swept"
    );
    assert_eq!(
        attr_sum("pair_evals"),
        repo.store().pair_evals() - evals_before,
        "span pair_evals must sum exactly to the pair-eval delta"
    );
}

/// The instrumented `score_rows` wrapper returns rows bitwise identical
/// to the pre-instrumentation baseline path, with tracing both on and
/// off, and a traced sweep lands observations in the latency histogram.
#[test]
fn instrumented_wrapper_matches_baseline_bitwise() {
    let _guard = guard();
    let config = StoreConfig {
        shards: 0,
        max_cached_rows: Some(3),
        batch_threads: 0,
    };
    let traced_repo = small_repository(config);
    let baseline_repo = small_repository(config);
    let queries: Vec<&str> = LABEL_POOL.to_vec();

    let _collector = smx_obs::install_collector();
    let hist_before = smx_obs::registry()
        .histogram("store.score_rows_ns")
        .data()
        .count;
    let traced = traced_repo.store().score_rows(&queries);
    let hist_after = smx_obs::registry()
        .histogram("store.score_rows_ns")
        .data()
        .count;
    reset_tracing();
    let baseline = baseline_repo.store().score_rows_uninstrumented(&queries);

    assert_eq!(traced.len(), baseline.len());
    for (q, (t, b)) in queries.iter().zip(traced.iter().zip(baseline.iter())) {
        assert_eq!(t.len(), b.len());
        for (x, y) in t.iter().zip(b.iter()) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "row for query {q:?} diverged between wrapper and baseline"
            );
        }
    }
    assert!(
        hist_after > hist_before,
        "traced sweep recorded no store.score_rows_ns observations"
    );
}

//! Property tests for the LRU-bounded score-row cache: after *any*
//! interleaving of ingests, row fetches, and bound changes —
//!
//! * the cache never exceeds `max_cached_rows`,
//! * evicted rows recompute to bitwise-equal values (every fetched row
//!   is checked against the scalar `NameSimilarity` oracle), and
//! * the counter snapshot satisfies `hits + misses == lookups`.
//!
//! The label pool, fixture schemas, and noisy query labels come from
//! the shared [`smx_synth::strategies`] vocabulary.

use proptest::prelude::*;
use smx_repo::{LabelId, Repository, StoreConfig};
use smx_synth::strategies::{
    noisy_labels, pool_indices, schema_with_label, small_repository, LABEL_POOL,
};
use smx_text::NameSimilarity;

#[derive(Clone, Debug)]
enum Op {
    /// Fetch `LABEL_POOL[i]`'s score row (cache hit, stale extension, or
    /// sweep).
    Query(usize),
    /// Ingest another schema containing `LABEL_POOL[i]` plus a fresh
    /// label.
    Add(usize),
    /// Tighten/loosen the LRU bound on the live store.
    SetCap(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            pool_indices().prop_map(Op::Query),
            pool_indices().prop_map(Op::Add),
            (1..6usize).prop_map(Op::SetCap),
        ],
        1..32,
    )
}

/// Assert `row` equals a scalar-oracle sweep of `query`, bitwise.
fn assert_row_is_oracle(repo: &Repository, query: &str, row: &[f64]) {
    let oracle = NameSimilarity::default();
    assert_eq!(row.len(), repo.store().len());
    for (id, d) in row.iter().enumerate() {
        let label = repo.store().interner().resolve(LabelId(id as u32));
        assert_eq!(
            d.to_bits(),
            oracle.distance(query, label).to_bits(),
            "row({query:?}) vs label {label:?}"
        );
    }
}

proptest! {
    #[test]
    fn lru_invariants_hold_under_any_interleaving(operations in ops(), cap0 in 1..5usize) {
        let mut repo = small_repository(StoreConfig {
            shards: 0,
            max_cached_rows: Some(cap0),
            batch_threads: 0,
        });
        let mut cap = cap0;
        let mut salt = 0usize;
        for op in &operations {
            match op {
                Op::Query(i) => {
                    let query = LABEL_POOL[*i];
                    let row = repo.store().score_row(query);
                    assert_row_is_oracle(&repo, query, &row);
                }
                Op::Add(i) => {
                    salt += 1;
                    repo.add(schema_with_label(LABEL_POOL[*i], salt));
                }
                Op::SetCap(c) => {
                    cap = *c;
                    repo.store().set_max_cached_rows(Some(cap));
                }
            }
            prop_assert!(
                repo.store().cached_rows() <= cap,
                "cache size {} exceeds bound {} after {:?}",
                repo.store().cached_rows(),
                cap,
                op
            );
        }
        let c = repo.store().counters();
        prop_assert_eq!(c.row_hits + c.row_misses, c.row_lookups);
        // Re-fetch the whole pool once more: evicted rows recompute to
        // bitwise-equal values regardless of the history above.
        for query in LABEL_POOL {
            let row = repo.store().score_row(query);
            assert_row_is_oracle(&repo, query, &row);
        }
    }

    #[test]
    fn bounded_store_agrees_with_unbounded_twin(
        queries in proptest::collection::vec(pool_indices(), 1..24),
        cap in 1..4usize,
    ) {
        let bounded = small_repository(StoreConfig { shards: 0, max_cached_rows: Some(cap), batch_threads: 0 });
        let unbounded = small_repository(StoreConfig::default());
        for &i in &queries {
            let query = LABEL_POOL[i];
            let b = bounded.store().score_row(query);
            let u = unbounded.store().score_row(query);
            prop_assert_eq!(b.len(), u.len());
            for (x, y) in b.iter().zip(u.iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{:?}", query);
            }
            prop_assert!(bounded.store().cached_rows() <= cap);
        }
        let cb = bounded.store().counters();
        let cu = unbounded.store().counters();
        prop_assert_eq!(cb.row_hits + cb.row_misses, cb.row_lookups);
        prop_assert_eq!(cu.row_hits + cu.row_misses, cu.row_lookups);
        // The bound can only cost extra sweeps, never save any.
        prop_assert!(cb.pair_evals >= cu.pair_evals);
        prop_assert!(cb.row_evictions >= cu.row_evictions);
    }

    #[test]
    fn batched_fetch_equals_individual_fetch_bitwise(
        batch in proptest::collection::vec(noisy_labels(), 0..16),
    ) {
        // Edit-noised queries: near-misses of interned labels exercise
        // the same sweep path as exact pool hits, bitwise.
        let batched = small_repository(StoreConfig::default());
        let individual = small_repository(StoreConfig::default());
        let queries: Vec<&str> = batch.iter().map(String::as_str).collect();
        let rows = batched.store().score_rows(&queries);
        prop_assert_eq!(rows.len(), queries.len());
        for (&query, row) in queries.iter().zip(&rows) {
            let alone = individual.store().score_row(query);
            prop_assert_eq!(row.len(), alone.len());
            for (x, y) in row.iter().zip(alone.iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{:?}", query);
            }
        }
        let c = batched.store().counters();
        prop_assert_eq!(c.row_hits + c.row_misses, c.row_lookups);
        prop_assert_eq!(c.row_lookups, queries.len() as u64);
    }
}

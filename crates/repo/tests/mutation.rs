//! Mutation edge cases for the sharded, mutable store: remove-then-readd
//! with identical labels, replace under a bounded store with spilled
//! rows, removal racing a concurrent batch sweep on a shared store, and
//! a property test proving arbitrary mutation histories stay equivalent
//! to a fresh rebuild.
//!
//! The load-bearing invariant throughout: label-level derived state
//! (interner, profiles, cached score rows) is **append-only** across
//! removals, so no mutation ever invalidates a cached row — rows are
//! compared bitwise against the scalar `NameSimilarity` oracle after
//! every history.

use proptest::prelude::*;
use smx_repo::{EvictionSink, LabelId, Repository, SchemaId, StoreConfig};
use smx_synth::strategies::{pool_indices, schema_with_label, small_repository, LABEL_POOL};
use smx_text::NameSimilarity;
use smx_xml::{PrimitiveType, Schema, SchemaBuilder};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Assert `row` equals a scalar-oracle sweep of `query` over `repo`'s
/// interned labels, bitwise.
fn assert_row_is_oracle(repo: &Repository, query: &str, row: &[f64]) {
    let oracle = NameSimilarity::default();
    assert_eq!(row.len(), repo.store().len());
    for (id, d) in row.iter().enumerate() {
        let label = repo.store().interner().resolve(LabelId(id as u32));
        assert_eq!(
            d.to_bits(),
            oracle.distance(query, label).to_bits(),
            "row({query:?}) vs label {label:?}"
        );
    }
}

/// Rebuild `repo`'s final schemas (tombstones as empty placeholders)
/// into a fresh repository and assert the token index and live-schema
/// accounting agree exactly.
fn assert_equals_fresh_rebuild(repo: &Repository) {
    let mut fresh = Repository::new();
    for sid in repo.schema_ids() {
        if repo.is_removed(sid) {
            fresh.add(Schema::new(""));
        } else {
            fresh.add(repo.schema(sid).clone());
        }
    }
    assert_eq!(
        repo.token_index().vocabulary_size(),
        fresh.token_index().vocabulary_size(),
        "vocabulary diverged from rebuild"
    );
    for tok in fresh.token_index().tokens() {
        assert_eq!(
            repo.token_index().lookup(tok),
            fresh.token_index().lookup(tok),
            "postings for {tok:?} diverged from rebuild"
        );
    }
    // The rebuild has placeholders, not tombstones — compare liveness
    // against the flags directly.
    assert_eq!(
        repo.live_schemas(),
        repo.schema_ids().filter(|&s| !repo.is_removed(s)).count()
    );
    // Column maps resolve to the same label text slot by slot.
    for sid in repo.schema_ids() {
        let names = |r: &Repository| {
            r.store()
                .schema_labels(sid)
                .iter()
                .map(|&l| r.store().interner().resolve(l).to_owned())
                .collect::<Vec<_>>()
        };
        assert_eq!(names(repo), names(&fresh), "{sid}");
    }
}

#[test]
fn remove_then_readd_identical_labels_reuses_interned_state() {
    let mut repo = small_repository(StoreConfig::default());
    let sid = SchemaId(0);
    let original = repo.schema(sid).clone();
    let builds_before = repo.store().profile_builds();
    let cached = repo.store().score_row("bookTitle");

    assert!(repo.remove_schema(sid));
    assert!(repo.is_removed(sid));
    // Re-add the *identical* schema at the same slot.
    assert!(repo.replace_schema(sid, original.clone()));
    assert!(!repo.is_removed(sid));
    assert_eq!(repo.schema(sid), &original);

    let store = repo.store();
    // Every label was already interned — no profile was rebuilt, no
    // label orphaned, and the cached row survived untouched.
    assert_eq!(store.profile_builds(), builds_before);
    assert_eq!(store.orphaned_labels(), 0);
    let again = store.score_row("bookTitle");
    assert!(Arc::ptr_eq(&cached, &again), "cached row was invalidated");
    // remove + readd = two generation bumps, visible in the counters.
    assert_eq!(store.schema_generation(sid), 2);
    assert_eq!(store.counters().schema_removes, 1);
    assert_eq!(store.counters().schema_replaces, 1);
    assert_equals_fresh_rebuild(&repo);
}

/// An in-memory [`EvictionSink`] — spilled rows land in a map, exactly
/// like the persist crate's spill file but without the I/O.
#[derive(Default)]
struct MemorySink {
    spilled: Mutex<HashMap<String, (Vec<f64>, u64)>>,
}

impl EvictionSink for MemorySink {
    fn on_evict(&self, query: &str, row: &[f64], labels_fingerprint: u64) -> bool {
        self.spilled
            .lock()
            .unwrap()
            .insert(query.to_owned(), (row.to_vec(), labels_fingerprint));
        true
    }

    fn recover(&self, query: &str) -> Option<(Vec<f64>, u64)> {
        self.spilled.lock().unwrap().get(query).cloned()
    }
}

#[test]
fn replace_under_bounded_store_recovers_spilled_rows() {
    let mut repo = small_repository(StoreConfig {
        shards: 4,
        max_cached_rows: Some(1),
        batch_threads: 0,
    });
    let sink = Arc::new(MemorySink::default());
    repo.store().set_eviction_sink(Some(sink.clone()));

    // Fill "orderTitle", then evict it by fetching a second row.
    let _ = repo.store().score_row("orderTitle");
    let _ = repo.store().score_row("bookYear");
    assert!(
        sink.spilled.lock().unwrap().contains_key("orderTitle"),
        "evicted row was not spilled"
    );

    // Replace a schema with one that adds brand-new labels. The spilled
    // row covers the old label prefix; labels are append-only across
    // mutation, so it is still a valid *prefix* after the replace.
    assert!(repo.replace_schema(
        SchemaId(1),
        SchemaBuilder::new("shop2")
            .root("warehouseDepot")
            .leaf("shipmentCode", PrimitiveType::String)
            .build(),
    ));
    let len_after = repo.store().len();

    let recoveries_before = repo.store().counters().row_spill_recoveries;
    let row = repo.store().score_row("orderTitle");
    assert_eq!(row.len(), len_after);
    assert_row_is_oracle(&repo, "orderTitle", &row);
    assert_eq!(
        repo.store().counters().row_spill_recoveries,
        recoveries_before + 1,
        "spilled prefix was not faulted back after the replace"
    );
    assert_equals_fresh_rebuild(&repo);
}

#[derive(Clone, Debug)]
enum Op {
    /// Ingest a fresh schema containing `LABEL_POOL[i]`.
    Add(usize),
    /// Remove the schema at slot `i % len` (no-op if already removed).
    Remove(usize),
    /// Replace slot `i % len` with a schema containing `LABEL_POOL[i]`.
    Replace(usize),
    /// Fetch `LABEL_POOL[i]`'s score row and check it against the
    /// oracle.
    Query(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            pool_indices().prop_map(Op::Add),
            pool_indices().prop_map(Op::Remove),
            pool_indices().prop_map(Op::Replace),
            pool_indices().prop_map(Op::Query),
        ],
        1..24,
    )
}

proptest! {
    /// Arbitrary interleavings of add / remove / replace / query keep
    /// the repository equivalent to a fresh rebuild of its final
    /// schemas, and every fetched row bitwise equal to the scalar
    /// oracle.
    #[test]
    fn mutation_histories_equal_fresh_rebuild(operations in ops(), cap in 1..4usize) {
        let mut repo = small_repository(StoreConfig {
            shards: 8,
            max_cached_rows: Some(cap),
            batch_threads: 0,
        });
        let mut salt = 100usize;
        for op in &operations {
            match op {
                Op::Add(i) => {
                    salt += 1;
                    repo.add(schema_with_label(LABEL_POOL[*i], salt));
                }
                Op::Remove(i) => {
                    let sid = SchemaId((*i % repo.len()) as u32);
                    let was_live = !repo.is_removed(sid);
                    prop_assert_eq!(repo.remove_schema(sid), was_live);
                }
                Op::Replace(i) => {
                    salt += 1;
                    let sid = SchemaId((*i % repo.len()) as u32);
                    prop_assert!(repo.replace_schema(sid, schema_with_label(LABEL_POOL[*i], salt)));
                    prop_assert!(!repo.is_removed(sid));
                }
                Op::Query(i) => {
                    let query = LABEL_POOL[*i];
                    let row = repo.store().score_row(query);
                    assert_row_is_oracle(&repo, query, &row);
                }
            }
            prop_assert!(repo.store().cached_rows() <= cap);
            prop_assert!(repo.live_schemas() <= repo.len());
        }
        let c = repo.store().counters();
        prop_assert_eq!(c.row_hits + c.row_misses, c.row_lookups);
        assert_equals_fresh_rebuild(&repo);
    }

    /// Removal racing a concurrent batch sweep: reader threads sweep a
    /// clone sharing the owner's store `Arc` while the owner mutates
    /// (`Arc::make_mut` detaches the owner's store under the readers —
    /// the all-shard-locking Clone path racing live shard sweeps).
    /// Readers must see their own frozen lineage bitwise-intact, and
    /// the owner must still equal a fresh rebuild afterwards.
    #[test]
    fn removal_during_concurrent_batch_sweep_is_safe(
        removals in proptest::collection::vec(pool_indices(), 1..6),
        queries in proptest::collection::vec(pool_indices(), 4..16),
    ) {
        let mut owner = small_repository(StoreConfig {
            shards: 8,
            max_cached_rows: Some(2),
            batch_threads: 0,
        });
        let mut salt = 500usize;
        for &i in &removals {
            salt += 1;
            owner.add(schema_with_label(LABEL_POOL[i], salt));
        }
        let reader = owner.clone();
        std::thread::scope(|scope| {
            for offset in 0..2usize {
                let reader = &reader;
                let queries = &queries;
                scope.spawn(move || {
                    for chunk in queries[offset..].chunks(3) {
                        let qs: Vec<&str> = chunk.iter().map(|&i| LABEL_POOL[i]).collect();
                        let rows = reader.store().score_rows(&qs);
                        for (q, row) in qs.iter().zip(&rows) {
                            assert_row_is_oracle(reader, q, row);
                        }
                    }
                });
            }
            // Mutate while the sweeps run: the first mutation detaches
            // the owner's store via the all-shard-locking Clone.
            for (n, &i) in removals.iter().enumerate() {
                let sid = SchemaId(((i + n) % owner.len()) as u32);
                owner.remove_schema(sid);
            }
        });
        // The readers' lineage was frozen at the clone; the owner's
        // mutations never touched it.
        prop_assert_eq!(reader.live_schemas(), reader.len());
        prop_assert!(owner.live_schemas() < owner.len() || removals.is_empty());
        assert_equals_fresh_rebuild(&owner);
        let c = owner.store().counters();
        prop_assert_eq!(c.row_hits + c.row_misses, c.row_lookups);
    }
}

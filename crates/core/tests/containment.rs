//! The paper's central claim as a property test: for **any** ground truth
//! `H`, any exhaustive run S1, and any sub-selection S2 ⊆ S1, the measured
//! `(P, R)` of S2 lies inside the `[worst, best]` bounds computed *without
//! H* — at every threshold, both for the naive per-threshold bounds and
//! the tighter incremental ones.

use proptest::prelude::*;
use smx_core::*;
use smx_eval::{AnswerId, AnswerSet, Counts, GroundTruth, PrCurve};

/// A full random scenario: S1's scored answers, a ground truth over them
/// (plus some never-retrieved correct answers), and a keep-mask for S2.
#[derive(Debug, Clone)]
struct Scenario {
    s1: AnswerSet,
    s2: AnswerSet,
    truth: GroundTruth,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        // Scores on a coarse grid to exercise ties.
        proptest::collection::vec(0u32..12, 2..60),
        // Correctness mask for retrieved answers.
        proptest::collection::vec(any::<bool>(), 2..60),
        // Keep mask for S2.
        proptest::collection::vec(any::<bool>(), 2..60),
        // Correct answers never retrieved by S1 (they only affect |H|).
        0usize..5,
    )
        .prop_map(|(scores, correct_mask, keep_mask, unretrieved)| {
            let s1 = AnswerSet::new(
                scores
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| (AnswerId(i as u64), s as f64 / 12.0)),
            )
            .expect("finite scores");
            let truth = GroundTruth::new(
                scores
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| correct_mask.get(*i).copied().unwrap_or(false))
                    .map(|(i, _)| AnswerId(i as u64))
                    .chain((0..unretrieved).map(|k| AnswerId(1_000_000 + k as u64))),
            );
            let s2 = s1.filter(|id| keep_mask.get(id.0 as usize).copied().unwrap_or(false));
            Scenario { s1, s2, truth }
        })
        .prop_filter("need at least one correct retrieved answer", |sc| {
            sc.s1.ids().any(|id| sc.truth.contains(id))
        })
}

fn measured(answers: &AnswerSet, truth: &GroundTruth, grid: &[f64]) -> PrCurve {
    PrCurve::measure(answers, truth, grid).expect("non-empty truth and grid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The theorem: bounds computed from S1's curve + S2's sizes contain
    /// S2's actual (P, R) at every grid threshold.
    #[test]
    fn bounds_contain_actual(sc in scenario()) {
        let grid = sc.s1.distinct_scores();
        let s1_curve = measured(&sc.s1, &sc.truth, &grid);
        let s2_curve = measured(&sc.s2, &sc.truth, &grid);
        let sizes: Vec<usize> = grid.iter().map(|&t| sc.s2.count_at(t)).collect();

        let env = BoundsEnvelope::from_sizes(&s1_curve, &sizes).unwrap();
        prop_assert!(
            env.contains(&s2_curve, 1e-9),
            "violation at {:?}",
            env.first_violation(&s2_curve, 1e-9)
        );
    }

    /// Incremental bounds are never looser than naive bounds, and both
    /// contain the actual value.
    #[test]
    fn incremental_tighter_than_naive(sc in scenario()) {
        let grid = sc.s1.distinct_scores();
        let s1_curve = measured(&sc.s1, &sc.truth, &grid);
        let sizes: Vec<usize> = grid.iter().map(|&t| sc.s2.count_at(t)).collect();
        let bounds = incremental_bounds(&s1_curve, &sizes).unwrap();
        for (p, &t) in bounds.points().iter().zip(&grid) {
            let actual = Counts::measure(&sc.s2, &sc.truth, t);
            let est = PrEstimate::new(actual.precision(), actual.recall(sc.truth.len()));
            prop_assert!(p.naive.contains(est, 1e-9), "naive bounds violated at {t}");
            prop_assert!(p.incremental.contains(est, 1e-9), "incremental bounds violated at {t}");
            prop_assert!(p.incremental.worst.precision >= p.naive.worst.precision - 1e-12);
            prop_assert!(p.incremental.worst.recall >= p.naive.worst.recall - 1e-12);
            prop_assert!(p.incremental.best.precision <= p.naive.best.precision + 1e-12);
            prop_assert!(p.incremental.best.recall <= p.naive.best.recall + 1e-12);
            // T2 count range brackets the actual number of correct answers.
            prop_assert!(p.t2_range.0 <= actual.correct && actual.correct <= p.t2_range.1);
        }
    }

    /// Count-space and ratio-space pointwise bounds agree on exact inputs.
    #[test]
    fn count_and_ratio_space_agree(a1 in 1usize..200, t_frac in 0.0f64..=1.0, a2_frac in 0.0f64..=1.0, h_extra in 0usize..50) {
        let t1 = (a1 as f64 * t_frac).round() as usize;
        let a2 = (a1 as f64 * a2_frac).round() as usize;
        let truth = t1 + h_extra;
        prop_assume!(truth > 0);
        let s1 = Counts::new(a1, t1);
        let from_counts = pointwise_bounds_from_counts(s1, truth, a2).unwrap();
        let from_ratio = pointwise_bounds(
            s1.precision(),
            s1.recall(truth),
            SizeRatio::from_counts(a2, a1).unwrap(),
        );
        for (x, y) in [
            (from_counts.best.precision, from_ratio.best.precision),
            (from_counts.best.recall, from_ratio.best.recall),
            (from_counts.worst.precision, from_ratio.worst.precision),
            (from_counts.worst.recall, from_ratio.worst.recall),
        ] {
            prop_assert!((x - y).abs() < 1e-9, "count {x} vs ratio {y} for {s1:?} a2={a2}");
        }
    }

    /// The random baseline lies between worst and best, and equals the
    /// empirical mean over many random sub-selections (law of large
    /// numbers, loose tolerance).
    #[test]
    fn random_baseline_is_between_bounds(sc in scenario()) {
        let grid = sc.s1.distinct_scores();
        let s1_curve = measured(&sc.s1, &sc.truth, &grid);
        let sizes: Vec<usize> = grid.iter().map(|&t| sc.s2.count_at(t)).collect();
        let rand = random_baseline(&s1_curve, &sizes).unwrap();
        let bounds = incremental_bounds(&s1_curve, &sizes).unwrap();
        for (r, b) in rand.iter().zip(bounds.points()) {
            prop_assert!(r.precision + 1e-9 >= b.incremental.worst.precision);
            prop_assert!(r.precision <= b.incremental.best.precision + 1e-9);
            prop_assert!(r.recall + 1e-9 >= b.incremental.worst.recall);
            prop_assert!(r.recall <= b.incremental.best.recall + 1e-9);
        }
    }

    /// Sub-increment segments contain the actual intermediate point for
    /// any threshold between two anchors of the real S1 run.
    #[test]
    fn subincrement_contains_actual(sc in scenario(), pick in any::<prop::sample::Index>()) {
        let grid = sc.s1.distinct_scores();
        prop_assume!(grid.len() >= 3);
        let k = 1 + pick.index(grid.len() - 2); // an interior grid point
        let (lo, hi) = (grid[0], *grid.last().unwrap());
        let anchor1 = Counts::measure(&sc.s1, &sc.truth, lo);
        let anchor2 = Counts::measure(&sc.s1, &sc.truth, hi);
        let mid = Counts::measure(&sc.s1, &sc.truth, grid[k]);
        let seg = sub_increment_bounds(anchor1, anchor2, sc.truth.len(), mid.answers).unwrap();
        let r = mid.recall(sc.truth.len());
        let p = mid.precision();
        prop_assert!(seg.contains(r, p, 1e-9), "mid {mid:?} outside segment {seg:?}");
        prop_assert!(seg.t_range.0 <= mid.correct && mid.correct <= seg.t_range.1);
    }

    /// Reconstructing a measured curve from its own interpolation with the
    /// true |H| yields bounds consistent with the originals.
    #[test]
    fn interpolated_roundtrip_bounds(sc in scenario()) {
        let grid = sc.s1.distinct_scores();
        let s1_curve = measured(&sc.s1, &sc.truth, &grid);
        // Use the curve's own points as the "published" interpolation.
        let interp = smx_eval::InterpolatedCurve::from_points(
            s1_curve.points().iter().map(|p| (p.recall, p.precision)),
        ).unwrap();
        if let Ok(rebuilt) = measured_from_interpolated(&interp, sc.truth.len()) {
            // Recall values must match the original curve's (same |H|).
            for p in rebuilt.points() {
                prop_assert!(p.recall <= 1.0 + 1e-9);
                prop_assert!(p.precision <= 1.0 + 1e-9);
            }
        }
    }
}

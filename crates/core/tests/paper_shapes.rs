//! Figure-shape regression tests: the qualitative claims the paper makes
//! about its own plots, asserted on deterministic synthetic curves so
//! they cannot silently drift.

use smx_core::*;
use smx_eval::{Counts, PrCurve};

/// A 10-increment S1 curve with declining per-increment precision —
/// the classic measured-curve regime of Figure 5.
fn classic_s1() -> PrCurve {
    let mut answers = 0;
    let mut correct = 0;
    let counts: Vec<(f64, Counts)> = (1..=10)
        .map(|i| {
            answers += 10 * i;
            correct += (12 - i).min(10 * i);
            (i as f64 / 10.0, Counts::new(answers, correct))
        })
        .collect();
    PrCurve::from_counts(80, counts).expect("valid synthetic curve")
}

/// §3.3: "for Â = 1 ... the best and worst case bounds are exactly the
/// same and equal to the original P/R curve".
#[test]
fn ratio_one_gives_absolute_certainty() {
    let curve = classic_s1();
    let env = BoundsEnvelope::fixed_ratio(&curve, SizeRatio::ONE).expect("consistent grid");
    for (p, orig) in env.points().iter().zip(curve.points()) {
        for est in [
            p.incremental.best,
            p.incremental.worst,
            p.naive.best,
            p.naive.worst,
            p.random,
        ] {
            assert!((est.precision - orig.precision).abs() < 1e-9);
            assert!((est.recall - orig.recall).abs() < 1e-9);
        }
    }
}

/// §3.3: "the bigger the answer size A_S2, the better the chances to
/// acquire narrow bounds" — envelope width shrinks monotonically in Â.
#[test]
fn envelope_narrows_as_ratio_grows() {
    let curve = classic_s1();
    let mut prev_width = f64::INFINITY;
    for ratio in [0.2, 0.4, 0.6, 0.8, 0.95, 1.0] {
        let env = BoundsEnvelope::fixed_ratio(&curve, SizeRatio::new(ratio).expect("in range"))
            .expect("consistent grid");
        let width: f64 = env
            .points()
            .iter()
            .map(|p| p.incremental.best.precision - p.incremental.worst.precision)
            .sum();
        assert!(
            width <= prev_width + 1e-9,
            "width {width} at ratio {ratio} exceeds {prev_width}"
        );
        prev_width = width;
    }
}

/// §3.3 / conclusion: the worst case is loosest at the high-recall end —
/// the guaranteed-recall gap to S1 grows along the sweep (each extra
/// increment adds more answers whose correctness the worst case writes
/// off).
#[test]
fn worst_case_degrades_with_threshold() {
    let curve = classic_s1();
    let env = BoundsEnvelope::fixed_ratio(&curve, SizeRatio::new(0.7).expect("in range"))
        .expect("consistent grid");
    let gaps: Vec<f64> = env
        .points()
        .iter()
        .map(|p| p.s1.recall - p.incremental.worst.recall)
        .collect();
    let first_half: f64 = gaps[..gaps.len() / 2].iter().sum();
    let second_half: f64 = gaps[gaps.len() / 2..].iter().sum();
    assert!(
        second_half >= first_half,
        "worst-case recall gap should grow along the sweep: {first_half} vs {second_half}"
    );
}

/// §3.4: "the random system ... gives a more useful lower bound, since it
/// produces a narrower interval" — random sits strictly above worst
/// whenever the bounds are non-trivial.
#[test]
fn random_is_a_narrower_lower_bound() {
    let curve = classic_s1();
    let env = BoundsEnvelope::fixed_ratio(&curve, SizeRatio::new(0.5).expect("in range"))
        .expect("consistent grid");
    let mut strictly_above = 0;
    for p in env.points() {
        assert!(p.random.precision >= p.incremental.worst.precision - 1e-9);
        assert!(p.random.recall >= p.incremental.worst.recall - 1e-9);
        if p.random.precision > p.incremental.worst.precision + 1e-9 {
            strictly_above += 1;
        }
    }
    assert!(
        strictly_above > env.len() / 2,
        "random baseline never improved on worst case"
    );
}

/// Conclusion: "for the top-N ... we can give useful, i.e., narrow
/// effectiveness bounds" — the head of the sweep has narrower bounds than
/// the tail for a declining-ratio system.
#[test]
fn topn_region_has_narrow_bounds() {
    let curve = classic_s1();
    // Ratio declines along the sweep, like Figure 10's systems.
    let ratios = RatioCurve::new(
        curve
            .thresholds()
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, SizeRatio::new(1.0 - 0.08 * i as f64).expect("in range"))),
    );
    let env = BoundsEnvelope::from_ratio_curve(&curve, &ratios).expect("consistent grid");
    let head = &env.points()[0];
    let tail = env.points().last().expect("non-empty");
    let head_width = head.incremental.best.precision - head.incremental.worst.precision;
    let tail_width = tail.incremental.best.precision - tail.incremental.worst.precision;
    assert!(
        head_width < tail_width,
        "head width {head_width} should be narrower than tail {tail_width}"
    );
}

/// The "trade-off at most x%" claim is monotone: keeping more answers
/// never worsens the guaranteed loss.
#[test]
fn guaranteed_loss_monotone_in_ratio() {
    let curve = classic_s1();
    let mut prev = (f64::INFINITY, f64::INFINITY);
    for ratio in [0.3, 0.5, 0.7, 0.9, 1.0] {
        let env = BoundsEnvelope::fixed_ratio(&curve, SizeRatio::new(ratio).expect("in range"))
            .expect("consistent grid");
        let (dp, dr) = env.max_guaranteed_loss();
        assert!(
            dp <= prev.0 + 1e-9,
            "precision loss grew with ratio {ratio}"
        );
        assert!(dr <= prev.1 + 1e-9, "recall loss grew with ratio {ratio}");
        prev = (dp, dr);
    }
    assert!(
        prev.0.abs() < 1e-9 && prev.1.abs() < 1e-9,
        "ratio 1 must have zero loss"
    );
}

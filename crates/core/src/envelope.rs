//! Best/worst/random P/R envelopes over a threshold sweep (§3.3, Figures
//! 9 and 11).
//!
//! A [`BoundsEnvelope`] packages, for every threshold of S1's measured
//! grid: the naive and incremental best/worst bounds and the random
//! baseline. The actual (unknown) P/R curve of S2 is guaranteed to lie
//! between worst and best; `contains` verifies that for scenarios where
//! ground truth *is* available.

use crate::error::BoundsError;
use crate::incremental::incremental_bounds;
use crate::pointwise::{pointwise_bounds, PointBounds, PrEstimate};
use crate::random::random_baseline;
use crate::ratio::{RatioCurve, SizeRatio};
use serde::{Deserialize, Serialize};
use smx_eval::{AnswerSet, PrCurve};

/// One threshold's worth of envelope data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvelopePoint {
    /// The threshold δ.
    pub threshold: f64,
    /// The size ratio `Â` there.
    pub ratio: SizeRatio,
    /// S1's measured `(P, R)`.
    pub s1: PrEstimate,
    /// Naive per-threshold bounds (Eqs. 1–6).
    pub naive: PointBounds,
    /// Incremental bounds (§3.2) — the ones to report.
    pub incremental: PointBounds,
    /// Random-selection baseline (Eqs. 9–10).
    pub random: PrEstimate,
}

/// Bounds envelope across a threshold sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundsEnvelope {
    points: Vec<EnvelopePoint>,
}

impl BoundsEnvelope {
    /// Count-space envelope from S1's measured curve and S2's cumulative
    /// answer counts on the same grid. This is the primary entry point:
    /// everything it needs is observable without ground truth for S2.
    pub fn from_sizes(s1_curve: &PrCurve, a2_sizes: &[usize]) -> Result<Self, BoundsError> {
        let inc = incremental_bounds(s1_curve, a2_sizes)?;
        let rand = random_baseline(s1_curve, a2_sizes)?;
        let points = inc
            .points()
            .iter()
            .zip(rand)
            .map(|(p, random)| EnvelopePoint {
                threshold: p.threshold,
                ratio: SizeRatio::from_counts(p.a2, p.s1.answers)
                    .expect("validated by incremental_bounds"),
                s1: PrEstimate::new(p.s1.precision(), p.s1.recall(inc.truth_size())),
                naive: p.naive,
                incremental: p.incremental,
                random,
            })
            .collect();
        Ok(BoundsEnvelope { points })
    }

    /// Envelope from S1's curve and S2's actual answer set: S2's counts
    /// are taken at the curve's thresholds. (The answer *identities* are
    /// not used — only sizes, as in the paper.)
    pub fn from_answer_sets(s1_curve: &PrCurve, s2: &AnswerSet) -> Result<Self, BoundsError> {
        let sizes: Vec<usize> = s1_curve
            .points()
            .iter()
            .map(|p| s2.count_at(p.threshold))
            .collect();
        Self::from_sizes(s1_curve, &sizes)
    }

    /// Ratio-space envelope for a hypothetical S2 with a fixed ratio `Â`
    /// at every threshold (Figure 9). Uses the closed-form equations, so
    /// no rounding of counts occurs; the incremental bounds are computed
    /// on the implied fractional sizes.
    pub fn fixed_ratio(s1_curve: &PrCurve, ratio: SizeRatio) -> Result<Self, BoundsError> {
        let curve = RatioCurve::constant(&s1_curve.thresholds(), ratio);
        Self::from_ratio_curve(s1_curve, &curve)
    }

    /// Ratio-space envelope from a measured ratio curve `Â(δ)` on the same
    /// grid as `s1_curve` (Figure 11). Counts are derived by rounding
    /// `Â·|A1|` to the nearest integer.
    pub fn from_ratio_curve(s1_curve: &PrCurve, ratios: &RatioCurve) -> Result<Self, BoundsError> {
        if ratios.len() != s1_curve.len() {
            return Err(BoundsError::LengthMismatch {
                expected: s1_curve.len(),
                got: ratios.len(),
            });
        }
        let mut sizes = Vec::with_capacity(s1_curve.len());
        let mut prev = 0usize;
        for (p, &(t, r)) in s1_curve.points().iter().zip(ratios.points()) {
            if t != p.threshold {
                return Err(BoundsError::BadAnchors(
                    "ratio curve grid differs from S1 grid",
                ));
            }
            // Round, then clamp into the feasible band so rounding noise
            // cannot violate monotonicity or per-increment containment.
            let ideal = (r.get() * p.counts.answers as f64).round() as usize;
            let size = ideal.clamp(prev, p.counts.answers);
            sizes.push(size);
            prev = size;
        }
        Self::from_sizes(s1_curve, &sizes)
    }

    /// The envelope's points, ascending in threshold.
    pub fn points(&self) -> &[EnvelopePoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the envelope has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point at exactly `threshold`, if on the grid.
    pub fn point_at(&self, threshold: f64) -> Option<&EnvelopePoint> {
        self.points.iter().find(|p| p.threshold == threshold)
    }

    /// Verify that an actually-measured S2 curve on the same grid lies
    /// inside the incremental bounds everywhere. Returns the first
    /// violating threshold, or `None` when contained.
    pub fn first_violation(&self, actual: &PrCurve, eps: f64) -> Option<f64> {
        for (env, act) in self.points.iter().zip(actual.points()) {
            let est = PrEstimate::new(act.precision, act.recall);
            if !env.incremental.contains(est, eps) {
                return Some(env.threshold);
            }
        }
        None
    }

    /// Whether `actual` lies inside the incremental bounds at every grid
    /// point.
    pub fn contains(&self, actual: &PrCurve, eps: f64) -> bool {
        actual.len() == self.len() && self.first_violation(actual, eps).is_none()
    }

    /// Maximum guaranteed effectiveness loss across the sweep: the largest
    /// gap between S1's precision and the worst-case precision, and
    /// likewise for recall — the "trade-off is at most x%" number the
    /// paper's conclusion advertises.
    pub fn max_guaranteed_loss(&self) -> (f64, f64) {
        let mut dp = 0.0_f64;
        let mut dr = 0.0_f64;
        for p in &self.points {
            dp = dp.max(p.s1.precision - p.incremental.worst.precision);
            dr = dr.max(p.s1.recall - p.incremental.worst.recall);
        }
        (dp, dr)
    }
}

/// Ratio-space reference implementation of one envelope point (used by
/// tests to cross-check the count-space pipeline).
pub fn ratio_space_point(p1: f64, r1: f64, ratio: SizeRatio) -> PointBounds {
    pointwise_bounds(p1, r1, ratio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_eval::{AnswerId, Counts};

    fn s1_curve() -> PrCurve {
        PrCurve::from_counts(
            100,
            [
                (0.05, Counts::new(10, 8)),
                (0.10, Counts::new(40, 15)),
                (0.20, Counts::new(72, 27)),
                (0.25, Counts::new(90, 30)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_sizes_produces_grid() {
        let env = BoundsEnvelope::from_sizes(&s1_curve(), &[8, 32, 48, 50]).unwrap();
        assert_eq!(env.len(), 4);
        let p = env.point_at(0.10).unwrap();
        assert!((p.ratio.get() - 0.8).abs() < 1e-12);
        assert!((p.s1.precision - 0.375).abs() < 1e-12);
        assert!(p.incremental.worst.precision >= p.naive.worst.precision - 1e-12);
        // Random sits between worst and best.
        assert!(p.random.precision + 1e-12 >= p.incremental.worst.precision);
        assert!(p.random.precision <= p.incremental.best.precision + 1e-12);
    }

    #[test]
    fn fixed_ratio_09_envelope() {
        // Figure 9: constant Â = 0.9.
        let env = BoundsEnvelope::fixed_ratio(&s1_curve(), SizeRatio::new(0.9).unwrap()).unwrap();
        for p in env.points() {
            // Worst below S1's curve, best above (or equal).
            assert!(p.incremental.worst.precision <= p.s1.precision + 1e-12);
            assert!(p.incremental.best.precision + 1e-12 >= p.s1.precision);
            assert!(p.incremental.worst.recall <= p.s1.recall + 1e-12);
            // Best recall can't exceed S1's recall (S2 ⊆ S1).
            assert!(p.incremental.best.recall <= p.s1.recall + 1e-12);
        }
    }

    #[test]
    fn ratio_one_collapses_everything() {
        let env = BoundsEnvelope::fixed_ratio(&s1_curve(), SizeRatio::ONE).unwrap();
        for p in env.points() {
            for est in [p.incremental.best, p.incremental.worst, p.random] {
                assert!((est.precision - p.s1.precision).abs() < 1e-9);
                assert!((est.recall - p.s1.recall).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn from_answer_sets_counts_at_grid() {
        let curve =
            PrCurve::from_counts(10, [(0.1, Counts::new(2, 1)), (0.2, Counts::new(4, 2))]).unwrap();
        let s2 = AnswerSet::new([(AnswerId(1), 0.1), (AnswerId(2), 0.2)]).unwrap();
        let env = BoundsEnvelope::from_answer_sets(&curve, &s2).unwrap();
        assert!((env.points()[0].ratio.get() - 0.5).abs() < 1e-12);
        assert!((env.points()[1].ratio.get() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn containment_check_works() {
        let curve = s1_curve();
        let sizes = [8usize, 32, 48, 50];
        let env = BoundsEnvelope::from_sizes(&curve, &sizes).unwrap();
        // An S2 that keeps the best-case correct counts at every point.
        let best_curve = PrCurve::from_counts(
            100,
            [
                (0.05, Counts::new(8, 8)),
                (0.10, Counts::new(32, 15)),
                (0.20, Counts::new(48, 27)),
                (0.25, Counts::new(50, 29)),
            ],
        )
        .unwrap();
        assert!(env.contains(&best_curve, 1e-9));
        // A fake curve claiming higher recall than S1 must violate.
        let impossible = PrCurve::from_counts(
            100,
            [
                (0.05, Counts::new(8, 8)),
                (0.10, Counts::new(32, 32)),
                (0.20, Counts::new(48, 48)),
                (0.25, Counts::new(50, 50)),
            ],
        )
        .unwrap();
        assert!(!env.contains(&impossible, 1e-9));
        assert_eq!(env.first_violation(&impossible, 1e-9), Some(0.10));
    }

    #[test]
    fn max_guaranteed_loss_reports_worst_gap() {
        let env = BoundsEnvelope::from_sizes(&s1_curve(), &[8, 32, 48, 50]).unwrap();
        let (dp, dr) = env.max_guaranteed_loss();
        assert!(dp > 0.0 && dp <= 1.0);
        assert!(dr > 0.0 && dr <= 1.0);
        // With ratio 1 the loss is zero.
        let sizes: Vec<usize> = s1_curve()
            .points()
            .iter()
            .map(|p| p.counts.answers)
            .collect();
        let tight = BoundsEnvelope::from_sizes(&s1_curve(), &sizes).unwrap();
        let (dp0, dr0) = tight.max_guaranteed_loss();
        assert!(dp0.abs() < 1e-12 && dr0.abs() < 1e-12);
    }

    #[test]
    fn ratio_curve_grid_must_match() {
        let curve = s1_curve();
        let short = RatioCurve::constant(&[0.05], SizeRatio::ONE);
        assert!(matches!(
            BoundsEnvelope::from_ratio_curve(&curve, &short),
            Err(BoundsError::LengthMismatch { .. })
        ));
        let wrong_grid = RatioCurve::constant(&[0.1, 0.2, 0.3, 0.4], SizeRatio::ONE);
        assert!(matches!(
            BoundsEnvelope::from_ratio_curve(&curve, &wrong_grid),
            Err(BoundsError::BadAnchors(_))
        ));
    }

    #[test]
    fn best_case_containment_checks_figure8() {
        // Verify the "best_curve" in containment_check_works is honest:
        // the incremental best at 0.25 is 15+12+min(3,2)=29... recompute:
        let curve = s1_curve();
        let env = BoundsEnvelope::from_sizes(&curve, &[8, 32, 48, 50]).unwrap();
        let p = env.point_at(0.25).unwrap();
        // increments of S1: (10,8), (30,7), (32,12), (18,3); S2 deltas:
        // 8, 24, 16, 2 → best T2 = 8 + min(7,24) + min(12,16) + min(3,2)
        // = 8+7+12+2 = 29.
        assert!((p.incremental.best.precision - 29.0 / 50.0).abs() < 1e-12);
    }
}

//! Using a published *interpolated* P/R curve as input — §4.1, Figure 12.
//!
//! An 11-point interpolated curve lacks the threshold↔point correspondence
//! because `|A^δ| = R·|H| / P` and `|H|` is unknown. Guessing `|H|`
//! recovers a measured-style curve: at each interpolated point,
//! `|T| = R·|H|` and `|A| = |T| / P` (rounded). [`measured_from_interpolated`]
//! performs that reconstruction; [`h_sensitivity_sweep`] quantifies how
//! sensitive the resulting bounds are to the guess — the paper "suspects
//! a rough estimate suffices", and the Figure 12 harness prints the sweep
//! that tests the suspicion.

use crate::envelope::BoundsEnvelope;
use crate::error::BoundsError;
use crate::ratio::SizeRatio;
use smx_eval::{Counts, EvalError, InterpolatedCurve, PrCurve};

/// Reconstruct a measured-style curve from an interpolated one under an
/// assumed `|H|`.
///
/// Points with zero recall *and* zero precision contribute nothing and are
/// skipped; remaining points are assigned synthetic thresholds equal to
/// their recall level (any strictly increasing labelling works — the
/// bounds only use the grid ordering). Counts are rounded to the nearest
/// integer and forced monotone, mirroring what a practitioner reading
/// numbers off a published plot would do.
pub fn measured_from_interpolated(
    interp: &InterpolatedCurve,
    assumed_truth_size: usize,
) -> Result<PrCurve, BoundsError> {
    if assumed_truth_size == 0 {
        return Err(BoundsError::InvalidTruthSize);
    }
    let mut counts: Vec<(f64, Counts)> = Vec::with_capacity(interp.len());
    let mut prev = Counts::default();
    for &(recall, precision) in interp.points() {
        let correct = (recall * assumed_truth_size as f64).round() as usize;
        if correct == 0 && precision <= 0.0 {
            continue;
        }
        let answers = if precision > 0.0 {
            (correct as f64 / precision).round() as usize
        } else {
            // R > 0 with P = 0 is inconsistent; treat as unusable point.
            continue;
        };
        // Force monotone growth (rounded published numbers can jitter).
        let answers = answers.max(prev.answers + 1);
        let correct = correct.clamp(prev.correct, answers.min(assumed_truth_size));
        let c = Counts::new(answers, correct);
        counts.push(((recall).max(0.0), c));
        prev = c;
    }
    if counts.is_empty() {
        return Err(BoundsError::Eval(EvalError::EmptyCurve));
    }
    // Synthetic strictly-increasing thresholds: the recall levels, nudged
    // where equal.
    let mut last = f64::NEG_INFINITY;
    for (t, _) in counts.iter_mut() {
        if *t <= last {
            *t = last + 1e-6;
        }
        last = *t;
    }
    Ok(PrCurve::from_counts(assumed_truth_size, counts)?)
}

/// For each candidate `|H|`, reconstruct the measured curve and compute a
/// fixed-ratio envelope, returning `(|H|, envelope)` pairs. Comparing the
/// envelopes across the sweep shows the impact of the guess (§4.1's open
/// question).
pub fn h_sensitivity_sweep(
    interp: &InterpolatedCurve,
    h_values: &[usize],
    ratio: SizeRatio,
) -> Result<Vec<(usize, BoundsEnvelope)>, BoundsError> {
    h_values
        .iter()
        .map(|&h| {
            let curve = measured_from_interpolated(interp, h)?;
            let env = BoundsEnvelope::fixed_ratio(&curve, ratio)?;
            Ok((h, env))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_eval::{AnswerId, AnswerSet, GroundTruth};

    fn some_measured_curve() -> PrCurve {
        let answers = AnswerSet::new((1..=200).map(|i| (AnswerId(i), i as f64 / 200.0))).unwrap();
        let truth = GroundTruth::new((1..=200).filter(|i| i % 3 == 0).map(AnswerId));
        PrCurve::measure(
            &answers,
            &truth,
            &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn reconstruction_with_true_h_recovers_counts() {
        let measured = some_measured_curve();
        let interp = InterpolatedCurve::from_points(
            measured.points().iter().map(|p| (p.recall, p.precision)),
        )
        .unwrap();
        let rebuilt = measured_from_interpolated(&interp, measured.truth_size()).unwrap();
        // With the *true* |H| the counts round back exactly (up to the
        // forced-monotone nudge, which does not fire here).
        for (orig, back) in measured.points().iter().zip(rebuilt.points()) {
            assert_eq!(orig.counts, back.counts, "at recall {}", orig.recall);
        }
    }

    #[test]
    fn reconstruction_scales_linearly_in_h() {
        let interp = InterpolatedCurve::from_points([(0.1, 0.8), (0.3, 0.6), (0.5, 0.4)]).unwrap();
        let small = measured_from_interpolated(&interp, 100).unwrap();
        let big = measured_from_interpolated(&interp, 10_000).unwrap();
        for (s, b) in small.points().iter().zip(big.points()) {
            // |A| and |T| scale by ~100 (rounding aside).
            let factor = b.counts.answers as f64 / s.counts.answers as f64;
            assert!((factor - 100.0).abs() < 5.0, "factor {factor}");
            // P/R are preserved up to the rounding error of the small |H|.
            assert!((s.precision - b.precision).abs() < 0.05);
            assert!((s.recall - b.recall).abs() < 0.01);
        }
    }

    #[test]
    fn zero_h_rejected_and_degenerate_curve_rejected() {
        let interp = InterpolatedCurve::from_points([(0.5, 0.5)]).unwrap();
        assert!(matches!(
            measured_from_interpolated(&interp, 0),
            Err(BoundsError::InvalidTruthSize)
        ));
        let unusable = InterpolatedCurve::from_points([(0.0, 0.0)]).unwrap();
        assert!(measured_from_interpolated(&unusable, 100).is_err());
    }

    #[test]
    fn sensitivity_sweep_bounds_stay_close_for_rough_h() {
        // The paper's suspicion: a rough |H| estimate gives nearly the
        // same bounds. Compare worst-case precision at matching grid
        // positions for |H| and 2·|H|.
        let measured = some_measured_curve();
        let interp = InterpolatedCurve::from_points(
            measured.points().iter().map(|p| (p.recall, p.precision)),
        )
        .unwrap();
        let sweep = h_sensitivity_sweep(
            &interp,
            &[measured.truth_size(), measured.truth_size() * 2],
            SizeRatio::new(0.9).unwrap(),
        )
        .unwrap();
        let (a, b) = (&sweep[0].1, &sweep[1].1);
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.points().iter().zip(b.points()) {
            assert!(
                (pa.incremental.worst.precision - pb.incremental.worst.precision).abs() < 0.05,
                "worst precision drifted: {} vs {}",
                pa.incremental.worst.precision,
                pb.incremental.worst.precision
            );
        }
    }
}

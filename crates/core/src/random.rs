//! The random-selection baseline of §3.4 — Equations (9)–(10).
//!
//! The worst case assumes an *adversarial* S2 that discards precisely the
//! correct answers. Any realistic improvement should at least beat a
//! system that picks, per increment, a uniformly random subset of S1's
//! answers of the same size as S2's. For that hypothetical system the
//! expected increment precision equals S1's (random selection preserves
//! the correct/incorrect mix) and increment recall scales by the size
//! ratio:
//!
//! ```text
//! P̂_rand = P̂_S1                        (9)
//! R̂_rand = R̂_S1 · (Δ|A2| / Δ|A1|)      (10)
//! ```
//!
//! Accumulating these per-increment expectations yields the random P/R
//! curve plotted in Figure 11 — a narrower, more useful lower bound.

use crate::error::BoundsError;
use crate::increment::curve_increments;
use crate::pointwise::PrEstimate;
use serde::{Deserialize, Serialize};
use smx_eval::{Counts, PrCurve};

/// Expected `(P, R)` of the random-selection system at each threshold of
/// the grid, plus the expected number of correct answers (fractional,
/// because it is an expectation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomPoint {
    /// The threshold δ.
    pub threshold: f64,
    /// S2's (and hence the random system's) answer count at δ.
    pub a2: usize,
    /// Expected correct answers `E[|T2|]`.
    pub expected_correct: f64,
    /// Expected precision/recall.
    pub expected: PrEstimate,
}

/// Compute the random baseline from S1's measured curve and S2's
/// cumulative answer counts at the same thresholds (Equations 9–10
/// accumulated with the §3.2 procedure).
pub fn random_baseline_from_counts(
    s1_curve: &PrCurve,
    a2_sizes: &[usize],
) -> Result<Vec<RandomPoint>, BoundsError> {
    let points = s1_curve.points();
    if a2_sizes.len() != points.len() {
        return Err(BoundsError::LengthMismatch {
            expected: points.len(),
            got: a2_sizes.len(),
        });
    }
    let truth_size = s1_curve.truth_size();
    let incs1 = curve_increments(s1_curve);
    let mut expected_t2 = 0.0_f64;
    let mut prev_a2 = 0usize;
    let mut out = Vec::with_capacity(points.len());
    for ((p, &a2), inc1) in points.iter().zip(a2_sizes).zip(&incs1) {
        if a2 < prev_a2 {
            return Err(BoundsError::NonMonotoneSizes {
                threshold: p.threshold,
            });
        }
        if a2 > p.counts.answers {
            return Err(BoundsError::NotASubSelection {
                threshold: p.threshold,
                s1: p.counts.answers,
                s2: a2,
            });
        }
        let delta_a2 = a2 - prev_a2;
        if delta_a2 > inc1.counts.answers {
            return Err(BoundsError::NotASubSelection {
                threshold: p.threshold,
                s1: inc1.counts.answers,
                s2: delta_a2,
            });
        }
        // Eq. (9)/(10): random selection keeps the increment's mix, so
        // E[ΔT2] = ΔT1 · (ΔA2 / ΔA1); an empty S1 increment contributes 0.
        if inc1.counts.answers > 0 {
            expected_t2 +=
                inc1.counts.correct as f64 * delta_a2 as f64 / inc1.counts.answers as f64;
        }
        prev_a2 = a2;
        let precision = if a2 == 0 {
            1.0
        } else {
            expected_t2 / a2 as f64
        };
        let recall = if truth_size == 0 {
            0.0
        } else {
            expected_t2 / truth_size as f64
        };
        out.push(RandomPoint {
            threshold: p.threshold,
            a2,
            expected_correct: expected_t2,
            expected: PrEstimate::new(precision, recall),
        });
    }
    Ok(out)
}

/// Convenience wrapper matching the envelope API: only the `(P, R)`
/// expectations.
pub fn random_baseline(
    s1_curve: &PrCurve,
    a2_sizes: &[usize],
) -> Result<Vec<PrEstimate>, BoundsError> {
    Ok(random_baseline_from_counts(s1_curve, a2_sizes)?
        .into_iter()
        .map(|p| p.expected)
        .collect())
}

/// Empirically simulate the random system once: per increment of
/// `s1_curve`'s grid, keep a uniformly random subset of the increment's
/// answers with the same size S2 had there. Used by tests to check
/// Equations (9)–(10) are indeed the expectation.
pub fn simulate_random_selection<R: FnMut(usize, usize) -> Vec<usize>>(
    s1_increment_counts: &[Counts],
    a2_increment_sizes: &[usize],
    mut choose: R,
) -> Vec<Counts> {
    // `choose(n, k)` returns k distinct indices in 0..n.
    s1_increment_counts
        .iter()
        .zip(a2_increment_sizes)
        .map(|(inc, &k)| {
            let picked = choose(inc.answers, k.min(inc.answers));
            let correct = picked.iter().filter(|&&i| i < inc.correct).count();
            Counts::new(picked.len(), correct)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure8_curve() -> PrCurve {
        PrCurve::from_counts(
            100,
            [(0.1, Counts::new(40, 15)), (0.2, Counts::new(72, 27))],
        )
        .unwrap()
    }

    #[test]
    fn random_baseline_figure8() {
        let pts = random_baseline_from_counts(&figure8_curve(), &[32, 48]).unwrap();
        // Increment 1: E[T] = 15 · 32/40 = 12 → P = 12/32 = 0.375 = P_S1.
        assert!((pts[0].expected_correct - 12.0).abs() < 1e-12);
        assert!((pts[0].expected.precision - 0.375).abs() < 1e-12);
        assert!((pts[0].expected.recall - 0.12).abs() < 1e-12);
        // Increment 2: E[ΔT] = 12 · 16/32 = 6 → cumulative 18 of 48.
        assert!((pts[1].expected_correct - 18.0).abs() < 1e-12);
        assert!((pts[1].expected.precision - 0.375).abs() < 1e-12);
        assert!((pts[1].expected.recall - 0.18).abs() < 1e-12);
    }

    #[test]
    fn random_precision_equals_s1_when_mix_uniform() {
        // If S1's precision is the same in every increment, Eq. (9) keeps
        // the random system's cumulative precision equal to S1's.
        let pts = random_baseline_from_counts(&figure8_curve(), &[10, 42]).unwrap();
        for p in &pts {
            assert!((p.expected.precision - 0.375).abs() < 1e-12);
        }
    }

    #[test]
    fn random_recall_scales_with_ratio() {
        let curve = figure8_curve();
        let full = random_baseline(&curve, &[40, 72]).unwrap();
        let half = random_baseline(&curve, &[20, 36]).unwrap();
        for (f, h) in full.iter().zip(&half) {
            assert!((h.recall - f.recall / 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn random_between_worst_and_best() {
        use crate::incremental::incremental_bounds;
        let curve = PrCurve::from_counts(
            60,
            [
                (0.05, Counts::new(12, 7)),
                (0.1, Counts::new(30, 13)),
                (0.2, Counts::new(55, 21)),
            ],
        )
        .unwrap();
        let sizes = [9, 18, 30];
        let rand = random_baseline(&curve, &sizes).unwrap();
        let bounds = incremental_bounds(&curve, &sizes).unwrap();
        for (r, b) in rand.iter().zip(bounds.points()) {
            assert!(r.precision + 1e-12 >= b.incremental.worst.precision);
            assert!(r.precision <= b.incremental.best.precision + 1e-12);
            assert!(r.recall + 1e-12 >= b.incremental.worst.recall);
            assert!(r.recall <= b.incremental.best.recall + 1e-12);
        }
    }

    #[test]
    fn validation() {
        let curve = figure8_curve();
        assert!(random_baseline(&curve, &[32]).is_err());
        assert!(random_baseline(&curve, &[32, 20]).is_err());
        assert!(random_baseline(&curve, &[60, 72]).is_err());
    }

    #[test]
    fn simulate_matches_expectation_under_deterministic_choice() {
        // A "random" chooser that picks a proportional prefix reproduces
        // the expectation exactly when sizes divide evenly.
        let incs = [Counts::new(40, 15), Counts::new(32, 12)];
        let sizes = [32usize, 16];
        let sim = simulate_random_selection(&incs, &sizes, |n, k| {
            // Evenly spread picks over 0..n.
            (0..k).map(|i| i * n / k).collect()
        });
        // First increment: indices 0..32 spread over 40 → 12 hits below 15.
        assert_eq!(sim[0].answers, 32);
        assert_eq!(sim[0].correct, 12);
        assert_eq!(sim[1].answers, 16);
        assert_eq!(sim[1].correct, 6);
    }
}

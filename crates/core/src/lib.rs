#![deny(missing_docs)]

//! Effectiveness bounds for non-exhaustive retrieval-system improvements —
//! the contribution of Smiljanić, van Keulen & Jonker (ICDE 2006).
//!
//! # Setting
//!
//! `S1` is an exhaustive system with a known (measured) P/R curve. `S2` is
//! an efficiency improvement that uses the **same objective function** Δ,
//! so at every threshold δ its answer set is a subset of S1's:
//! `A_S2^δ ⊆ A_S1^δ`. Which answers S2 *misses* — correct or incorrect
//! ones — is unknown without ground truth `H`; the paper derives the best
//! and worst cases analytically:
//!
//! * [`pointwise`] — Equations (1)–(6): per-threshold best/worst precision
//!   and recall from `(P_S1, R_S1)` and the size ratio
//!   `Â = |A_S2|/|A_S1|`, in both exact count space and the paper's
//!   closed-form ratio space;
//! * [`increment`] — Equations (7)–(8): precision/recall of a threshold
//!   *increment* `δ_i → δ_{i+1}`;
//! * [`incremental`] — §3.2's four-step procedure that applies the
//!   pointwise formulas per increment and accumulates, yielding strictly
//!   tighter bounds (the Figure 8 example: naive worst-case precision
//!   1/16 at δ2 becomes 7/48);
//! * [`random`] — Equations (9)–(10): the expected P/R of a hypothetical
//!   improvement that picks answers uniformly at random per increment — a
//!   more useful lower bound than the adversarial worst case (§3.4);
//! * [`envelope`] — best/worst/random P/R curves over a whole threshold
//!   sweep (Figures 9 and 11) plus containment checking;
//! * [`ratio`] — validated size ratios and ratio curves (Figure 10);
//! * [`containment`] — verifying `A_S2^δ ⊆ A_S1^δ` from actual answer
//!   sets and deriving size-ratio curves from them;
//! * [`interpolated_input`] — §4.1: feeding a *published interpolated*
//!   curve into the technique by guessing `|H|` (Figure 12);
//! * [`subincrement`] — §4.2: the line segments that bound interpolation
//!   *between* measured thresholds (Figure 13), and the mid-point rule.
//!
//! # The theorem, as a property test
//!
//! Because this reproduction generates scenarios with known `H`, the
//! central claim is machine-checked in `tests/containment.rs`: for *every*
//! sub-selection S2 of S1's answers, the measured `(P, R)` of S2 lies
//! within the computed `[worst, best]` bounds at every threshold, and the
//! incremental bounds are never looser than the naive ones.

pub mod containment;
pub mod envelope;
pub mod error;
pub mod increment;
pub mod incremental;
pub mod interpolated_input;
pub mod pointwise;
pub mod random;
pub mod ratio;
pub mod subincrement;

pub use containment::{ratio_curve_between, verify_subset_at_all_thresholds};
pub use envelope::{BoundsEnvelope, EnvelopePoint};
pub use error::BoundsError;
pub use increment::{
    curve_increments, increment_precision, increment_recall, recombine_increments, IncrementCounts,
};
pub use incremental::{incremental_bounds, IncrementalBounds};
pub use interpolated_input::{h_sensitivity_sweep, measured_from_interpolated};
pub use pointwise::{
    best_case_counts, pointwise_bounds, pointwise_bounds_from_counts, worst_case_counts,
    PointBounds, PrEstimate,
};
pub use random::{
    random_baseline, random_baseline_from_counts, simulate_random_selection, RandomPoint,
};
pub use ratio::{RatioCurve, SizeRatio};
pub use subincrement::{
    midpoint_rule, sub_increment_bounds, sub_increment_sweep, SubIncrementBound,
};

//! Per-threshold best/worst-case bounds — Equations (1)–(6) of §3.1.
//!
//! At one threshold δ, S1 produced `|A1|` answers of which `|T1|` are
//! correct, and S2 produced `|A2| ≤ |A1|` answers. Which of S1's answers
//! S2 kept is unknown, so (Figure 7):
//!
//! * **best case** — S2 missed only incorrect answers:
//!   `|T2| = min(|T1|, |A2|)` (Eq. 1), giving
//!   `P2 = min(P1/Â, 1)` (Eq. 2) and `R2 = R1·min(1, Â/P1)` (Eq. 3);
//! * **worst case** — S2 missed the most correct answers possible:
//!   `|T2| = max(0, |A2| − (|A1| − |T1|))` (Eq. 4), giving
//!   `P2 = max(0, 1 − (1−P1)/Â)` (Eq. 5) and
//!   `R2 = max(0, R1·((Â−1)/P1 + 1))` (Eq. 6),
//!
//! where `Â = |A2|/|A1|` is the size ratio. Both an exact count-space form
//! and the paper's closed-form ratio-space form are provided; property
//! tests assert they agree wherever both apply.
//!
//! Conventions at the edges: an empty S2 answer set (`Â = 0`) has
//! precision 1 (no wrong answers) and recall 0, matching
//! [`Counts::precision`]; `P1 = 0` forces `T1 = 0`, so both cases give
//! recall 0.

use crate::error::BoundsError;
use crate::ratio::SizeRatio;
use serde::{Deserialize, Serialize};
use smx_eval::Counts;

/// A `(precision, recall)` pair describing one hypothetical outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrEstimate {
    /// Precision in `[0, 1]`.
    pub precision: f64,
    /// Recall in `[0, 1]`.
    pub recall: f64,
}

impl PrEstimate {
    /// Construct, clamping tiny numeric overshoot into `[0, 1]`.
    pub fn new(precision: f64, recall: f64) -> Self {
        PrEstimate {
            precision: precision.clamp(0.0, 1.0),
            recall: recall.clamp(0.0, 1.0),
        }
    }
}

/// Best- and worst-case `(P, R)` for S2 at one threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointBounds {
    /// Equations (2)–(3): S2 missed only incorrect answers.
    pub best: PrEstimate,
    /// Equations (5)–(6): S2 missed the most correct answers possible.
    pub worst: PrEstimate,
}

impl PointBounds {
    /// Whether an actual measurement lies inside the bounds
    /// (with numeric tolerance `eps`).
    pub fn contains(&self, actual: PrEstimate, eps: f64) -> bool {
        actual.precision >= self.worst.precision - eps
            && actual.precision <= self.best.precision + eps
            && actual.recall >= self.worst.recall - eps
            && actual.recall <= self.best.recall + eps
    }
}

/// Equation (1): best-case counts for S2 — it kept as many correct answers
/// as fit: `|T2| = min(|T1|, |A2|)`.
pub fn best_case_counts(s1: Counts, a2: usize) -> Counts {
    Counts::new(a2, s1.correct.min(a2))
}

/// Equation (4): worst-case counts for S2 — it kept as many *incorrect*
/// answers as fit: `|T2| = max(0, |A2| − (|A1| − |T1|))`.
pub fn worst_case_counts(s1: Counts, a2: usize) -> Counts {
    Counts::new(a2, a2.saturating_sub(s1.incorrect()))
}

/// Equations (2), (3), (5), (6) in ratio space: bounds from S1's measured
/// `(P1, R1)` and the size ratio `Â`.
pub fn pointwise_bounds(p1: f64, r1: f64, ratio: SizeRatio) -> PointBounds {
    let a = ratio.get();
    if ratio.is_zero() {
        // S2 returned nothing: empty-set precision convention, zero recall.
        let empty = PrEstimate::new(1.0, 0.0);
        return PointBounds {
            best: empty,
            worst: empty,
        };
    }
    let best_p = if p1 <= 0.0 { 0.0 } else { (p1 / a).min(1.0) };
    let best_r = if p1 <= 0.0 {
        0.0
    } else {
        r1 * (a / p1).min(1.0)
    };
    let worst_p = (1.0 - (1.0 - p1) / a).max(0.0);
    let worst_r = if p1 <= 0.0 {
        0.0
    } else {
        (r1 * ((a - 1.0) / p1 + 1.0)).max(0.0)
    };
    // p1 == 0 with an empty answer set: P1 is conventionally 1 there, so
    // p1 == 0 implies A1 > 0 and T1 = 0; best precision is then 0 as well.
    PointBounds {
        best: PrEstimate::new(best_p, best_r),
        worst: PrEstimate::new(worst_p, worst_r),
    }
}

/// Exact count-space bounds: S1's counts at δ, `|H|`, and S2's answer
/// count there. Fails if `a2 > |A1|` (not a sub-selection).
pub fn pointwise_bounds_from_counts(
    s1: Counts,
    truth_size: usize,
    a2: usize,
) -> Result<PointBounds, BoundsError> {
    if a2 > s1.answers {
        return Err(BoundsError::NotASubSelection {
            threshold: f64::NAN,
            s1: s1.answers,
            s2: a2,
        });
    }
    let best = best_case_counts(s1, a2);
    let worst = worst_case_counts(s1, a2);
    Ok(PointBounds {
        best: PrEstimate::new(best.precision(), best.recall(truth_size)),
        worst: PrEstimate::new(worst.precision(), worst.recall(truth_size)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio(x: f64) -> SizeRatio {
        SizeRatio::new(x).unwrap()
    }

    #[test]
    fn figure8_naive_worst_case() {
        // S1: P = 3/8 at both thresholds; 40 and 72 answers; S2: 32, 48.
        let s1_d1 = Counts::new(40, 15);
        let s1_d2 = Counts::new(72, 27);
        let w1 = worst_case_counts(s1_d1, 32);
        assert_eq!(w1.correct, 7);
        assert!((w1.precision() - 7.0 / 32.0).abs() < 1e-12);
        let w2 = worst_case_counts(s1_d2, 48);
        assert_eq!(w2.correct, 3);
        assert!((w2.precision() - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn figure8_in_ratio_space() {
        // Same numbers through Equation (5).
        let b1 = pointwise_bounds(3.0 / 8.0, 15.0 / 100.0, ratio(32.0 / 40.0));
        assert!((b1.worst.precision - 7.0 / 32.0).abs() < 1e-12);
        let b2 = pointwise_bounds(3.0 / 8.0, 27.0 / 100.0, ratio(48.0 / 72.0));
        assert!((b2.worst.precision - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn best_case_counts_cap_at_a2_and_t1() {
        let s1 = Counts::new(10, 6);
        assert_eq!(best_case_counts(s1, 4), Counts::new(4, 4)); // Figure 7(a)
        assert_eq!(best_case_counts(s1, 8), Counts::new(8, 6)); // Figure 7(b)
    }

    #[test]
    fn worst_case_counts_detached_or_overlapping() {
        let s1 = Counts::new(10, 6);
        assert_eq!(worst_case_counts(s1, 3), Counts::new(3, 0)); // Figure 7(c)
        assert_eq!(worst_case_counts(s1, 8), Counts::new(8, 4)); // Figure 7(d)
    }

    #[test]
    fn ratio_one_collapses_to_original() {
        for (p1, r1) in [(0.375, 0.15), (1.0, 1.0), (0.2, 0.9)] {
            let b = pointwise_bounds(p1, r1, SizeRatio::ONE);
            assert!((b.best.precision - p1).abs() < 1e-12);
            assert!((b.worst.precision - p1).abs() < 1e-12);
            assert!((b.best.recall - r1).abs() < 1e-12);
            assert!((b.worst.recall - r1).abs() < 1e-12);
        }
    }

    #[test]
    fn ratio_zero_uses_empty_conventions() {
        let b = pointwise_bounds(0.4, 0.3, SizeRatio::ZERO);
        assert_eq!(b.best, PrEstimate::new(1.0, 0.0));
        assert_eq!(b.worst, PrEstimate::new(1.0, 0.0));
        // Count space agrees.
        let c = pointwise_bounds_from_counts(Counts::new(10, 4), 8, 0).unwrap();
        assert_eq!(c.best, PrEstimate::new(1.0, 0.0));
        assert_eq!(c.worst, PrEstimate::new(1.0, 0.0));
    }

    #[test]
    fn p1_zero_means_nothing_correct_anywhere() {
        let b = pointwise_bounds(0.0, 0.0, ratio(0.5));
        assert_eq!(b.best, PrEstimate::new(0.0, 0.0));
        assert_eq!(b.worst, PrEstimate::new(0.0, 0.0));
        let c = pointwise_bounds_from_counts(Counts::new(10, 0), 5, 5).unwrap();
        assert_eq!(c.best, PrEstimate::new(0.0, 0.0));
        assert_eq!(c.worst, PrEstimate::new(0.0, 0.0));
    }

    #[test]
    fn count_and_ratio_space_agree() {
        let truth = 100;
        for (a1, t1) in [(40, 15), (72, 27), (10, 10), (50, 1)] {
            let s1 = Counts::new(a1, t1);
            for a2 in [0, 1, a1 / 3, a1 / 2, a1 - 1, a1] {
                let from_counts = pointwise_bounds_from_counts(s1, truth, a2).unwrap();
                let from_ratio = pointwise_bounds(
                    s1.precision(),
                    s1.recall(truth),
                    SizeRatio::from_counts(a2, a1).unwrap(),
                );
                for (x, y) in [
                    (from_counts.best.precision, from_ratio.best.precision),
                    (from_counts.best.recall, from_ratio.best.recall),
                    (from_counts.worst.precision, from_ratio.worst.precision),
                    (from_counts.worst.recall, from_ratio.worst.recall),
                ] {
                    assert!((x - y).abs() < 1e-9, "{s1:?} a2={a2}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn worst_never_exceeds_best() {
        for p1 in [0.0, 0.1, 0.375, 0.9, 1.0] {
            for r1 in [0.0, 0.2, 0.8, 1.0] {
                for a in [0.0, 0.1, 0.5, 0.9, 1.0] {
                    let b = pointwise_bounds(p1, r1, ratio(a));
                    assert!(b.worst.precision <= b.best.precision + 1e-12);
                    assert!(b.worst.recall <= b.best.recall + 1e-12);
                }
            }
        }
    }

    #[test]
    fn not_a_subselection_rejected() {
        assert!(pointwise_bounds_from_counts(Counts::new(10, 4), 8, 11).is_err());
    }

    #[test]
    fn contains_with_tolerance() {
        let b = pointwise_bounds(0.5, 0.5, ratio(0.8));
        assert!(b.contains(PrEstimate::new(0.5, 0.45), 1e-9));
        assert!(!b.contains(PrEstimate::new(1.0, 1.0), 1e-9));
    }
}

//! Answer-set size ratios `Â = |A_S2| / |A_S1|`.
//!
//! The size ratio is the *only* experimental input the bounds need about
//! S2. A [`SizeRatio`] is a validated scalar in `[0, 1]`; a [`RatioCurve`]
//! records the ratio as a function of the threshold δ (Figure 10).

use crate::error::BoundsError;
use serde::{Deserialize, Serialize};

/// A validated size ratio in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SizeRatio(f64);

impl SizeRatio {
    /// The ratio `1`: S2 produced exactly as many answers as S1 (and hence
    /// — under the shared objective function — exactly the same answers).
    pub const ONE: SizeRatio = SizeRatio(1.0);
    /// The ratio `0`: S2 produced nothing.
    pub const ZERO: SizeRatio = SizeRatio(0.0);

    /// Validate a raw ratio.
    pub fn new(ratio: f64) -> Result<Self, BoundsError> {
        if ratio.is_finite() && (0.0..=1.0).contains(&ratio) {
            Ok(SizeRatio(ratio))
        } else {
            Err(BoundsError::InvalidRatio(ratio))
        }
    }

    /// Ratio from answer counts; requires `s2 ≤ s1`. When `s1 == 0` (both
    /// empty) the ratio is defined as `1` — equal answer sets.
    pub fn from_counts(s2: usize, s1: usize) -> Result<Self, BoundsError> {
        if s2 > s1 {
            return Err(BoundsError::NotASubSelection {
                threshold: f64::NAN,
                s1,
                s2,
            });
        }
        if s1 == 0 {
            return Ok(SizeRatio::ONE);
        }
        Ok(SizeRatio(s2 as f64 / s1 as f64))
    }

    /// The ratio value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Whether this is exactly 1 (bounds collapse onto S1's curve).
    pub fn is_one(self) -> bool {
        self.0 == 1.0
    }

    /// Whether this is exactly 0 (S2 returns nothing).
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl std::fmt::Display for SizeRatio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

/// The measured ratio `Â(δ)` over a threshold sweep (Figure 10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RatioCurve {
    points: Vec<(f64, SizeRatio)>,
}

impl RatioCurve {
    /// Build from `(threshold, ratio)` pairs; sorted by threshold.
    pub fn new(points: impl IntoIterator<Item = (f64, SizeRatio)>) -> Self {
        let mut points: Vec<(f64, SizeRatio)> = points.into_iter().collect();
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite thresholds"));
        RatioCurve { points }
    }

    /// Build from per-threshold `(threshold, |A_S2|, |A_S1|)` counts.
    pub fn from_counts(
        counts: impl IntoIterator<Item = (f64, usize, usize)>,
    ) -> Result<Self, BoundsError> {
        let mut points = Vec::new();
        for (threshold, s2, s1) in counts {
            let ratio = SizeRatio::from_counts(s2, s1).map_err(|e| match e {
                BoundsError::NotASubSelection { s1, s2, .. } => {
                    BoundsError::NotASubSelection { threshold, s1, s2 }
                }
                other => other,
            })?;
            points.push((threshold, ratio));
        }
        Ok(RatioCurve::new(points))
    }

    /// A constant ratio at each of the given thresholds (Figure 9's
    /// hypothetical system).
    pub fn constant(thresholds: &[f64], ratio: SizeRatio) -> Self {
        RatioCurve::new(thresholds.iter().map(|&t| (t, ratio)))
    }

    /// The `(threshold, ratio)` points, ascending in threshold.
    pub fn points(&self) -> &[(f64, SizeRatio)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the curve is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The ratio at exactly `threshold`, if measured there.
    pub fn at(&self, threshold: f64) -> Option<SizeRatio> {
        self.points
            .iter()
            .find(|(t, _)| *t == threshold)
            .map(|&(_, r)| r)
    }

    /// Mean ratio across the sweep — a one-number summary of how much of
    /// the search S2 retains.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 1.0;
        }
        self.points.iter().map(|(_, r)| r.get()).sum::<f64>() / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_validation() {
        assert!(SizeRatio::new(0.5).is_ok());
        assert!(SizeRatio::new(0.0).is_ok());
        assert!(SizeRatio::new(1.0).is_ok());
        assert!(SizeRatio::new(-0.1).is_err());
        assert!(SizeRatio::new(1.1).is_err());
        assert!(SizeRatio::new(f64::NAN).is_err());
        assert!(SizeRatio::new(f64::INFINITY).is_err());
    }

    #[test]
    fn ratio_from_counts() {
        assert_eq!(SizeRatio::from_counts(32, 40).unwrap().get(), 0.8);
        assert!(SizeRatio::from_counts(0, 0).unwrap().is_one());
        assert!(SizeRatio::from_counts(0, 5).unwrap().is_zero());
        assert!(matches!(
            SizeRatio::from_counts(6, 5),
            Err(BoundsError::NotASubSelection { .. })
        ));
    }

    #[test]
    fn curve_sorted_and_lookup() {
        let c = RatioCurve::new([
            (0.2, SizeRatio::new(0.5).unwrap()),
            (0.1, SizeRatio::new(0.9).unwrap()),
        ]);
        assert_eq!(c.points()[0].0, 0.1);
        assert_eq!(c.at(0.2).unwrap().get(), 0.5);
        assert_eq!(c.at(0.15), None);
        assert!((c.mean() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn curve_from_counts_checks_subset() {
        let ok = RatioCurve::from_counts([(0.1, 32, 40), (0.2, 48, 72)]).unwrap();
        assert!((ok.at(0.1).unwrap().get() - 0.8).abs() < 1e-12);
        assert!((ok.at(0.2).unwrap().get() - 2.0 / 3.0).abs() < 1e-12);
        let bad = RatioCurve::from_counts([(0.1, 50, 40)]);
        assert!(matches!(
            bad,
            Err(BoundsError::NotASubSelection { threshold, s1: 40, s2: 50 }) if threshold == 0.1
        ));
    }

    #[test]
    fn constant_curve() {
        let c = RatioCurve::constant(&[0.1, 0.2, 0.3], SizeRatio::new(0.9).unwrap());
        assert_eq!(c.len(), 3);
        assert!(c.points().iter().all(|(_, r)| r.get() == 0.9));
        assert!(RatioCurve::default().is_empty());
        assert_eq!(RatioCurve::default().mean(), 1.0);
    }
}

//! Sub-increment interpolation bounds — §4.2, Figure 13.
//!
//! Between two measured anchors `(δ1, |A1|, |T1|)` and `(δ2, |A2|, |T2|)`,
//! a rebuilt system observed at an intermediate threshold δ′ produces some
//! `A′` answers with `A1 ≤ A′ ≤ A2`. How many of the `A′ − A1` extra
//! answers are correct is unknown, but it is boxed in:
//!
//! ```text
//! extra_correct ∈ [ max(0, (A′−A1) − (ΔA − ΔT)),  min(A′−A1, ΔT) ]
//! ```
//!
//! with `ΔA = A2−A1`, `ΔT = T2−T1`. Each admissible `T′` yields the point
//! `(T′/|H|, T′/A′)`; the set of them is a **line segment** on the P/R
//! plane (the paper's thick `δ′` line). The safest single interpolation
//! choice is the segment's midpoint (§4.2's closing observation).

use crate::error::BoundsError;
use serde::{Deserialize, Serialize};
use smx_eval::Counts;

/// The bound segment for one intermediate answer count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubIncrementBound {
    /// The intermediate answer count `A′`.
    pub answers: usize,
    /// Admissible range of `T′` (inclusive).
    pub t_range: (usize, usize),
    /// Worst endpoint `(recall, precision)` — fewest correct extras.
    pub worst: (f64, f64),
    /// Best endpoint `(recall, precision)` — most correct extras.
    pub best: (f64, f64),
}

impl SubIncrementBound {
    /// Segment midpoint `(recall, precision)` — the minimal-error
    /// interpolation choice.
    pub fn midpoint(&self) -> (f64, f64) {
        (
            (self.worst.0 + self.best.0) / 2.0,
            (self.worst.1 + self.best.1) / 2.0,
        )
    }

    /// Whether an actual `(recall, precision)` measurement lies on the
    /// segment (within `eps` along both axes).
    pub fn contains(&self, recall: f64, precision: f64, eps: f64) -> bool {
        recall >= self.worst.0 - eps
            && recall <= self.best.0 + eps
            && precision >= self.worst.1.min(self.best.1) - eps
            && precision <= self.worst.1.max(self.best.1) + eps
    }
}

/// Bound the P/R point of an intermediate threshold with `a_prime` answers
/// between `anchor1` (at δ1) and `anchor2` (at δ2), given `|H|`.
pub fn sub_increment_bounds(
    anchor1: Counts,
    anchor2: Counts,
    truth_size: usize,
    a_prime: usize,
) -> Result<SubIncrementBound, BoundsError> {
    if truth_size == 0 {
        return Err(BoundsError::InvalidTruthSize);
    }
    if anchor2.answers < anchor1.answers || anchor2.correct < anchor1.correct {
        return Err(BoundsError::BadAnchors(
            "second anchor must dominate the first",
        ));
    }
    if a_prime < anchor1.answers || a_prime > anchor2.answers {
        return Err(BoundsError::BadAnchors(
            "A' must lie between the anchors' answer counts",
        ));
    }
    let delta_t = anchor2.correct - anchor1.correct;
    let delta_i = (anchor2.answers - anchor1.answers) - delta_t;
    let extra = a_prime - anchor1.answers;
    let lo = anchor1.correct + extra.saturating_sub(delta_i);
    let hi = anchor1.correct + extra.min(delta_t);
    let point = |t: usize| -> (f64, f64) {
        let recall = t as f64 / truth_size as f64;
        let precision = if a_prime == 0 {
            1.0
        } else {
            t as f64 / a_prime as f64
        };
        (recall, precision)
    };
    Ok(SubIncrementBound {
        answers: a_prime,
        t_range: (lo, hi),
        worst: point(lo),
        best: point(hi),
    })
}

/// Sweep every intermediate answer count `A1..=A2`, producing the family
/// of segments Figure 13 plots.
pub fn sub_increment_sweep(
    anchor1: Counts,
    anchor2: Counts,
    truth_size: usize,
) -> Result<Vec<SubIncrementBound>, BoundsError> {
    (anchor1.answers..=anchor2.answers)
        .map(|a| sub_increment_bounds(anchor1, anchor2, truth_size, a))
        .collect()
}

/// The mid-point interpolation rule: the `(recall, precision)` choices
/// with the smallest worst-case error for each intermediate count.
pub fn midpoint_rule(
    anchor1: Counts,
    anchor2: Counts,
    truth_size: usize,
) -> Result<Vec<(f64, f64)>, BoundsError> {
    Ok(sub_increment_sweep(anchor1, anchor2, truth_size)?
        .iter()
        .map(SubIncrementBound::midpoint)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 13's literal numbers: |H| = 100, anchors (50, 30) and
    /// (70, 36); rebuilt system shows 54 answers at δ′.
    fn figure13() -> (Counts, Counts, usize) {
        (Counts::new(50, 30), Counts::new(70, 36), 100)
    }

    #[test]
    fn figure13_exact_segment() {
        let (a1, a2, h) = figure13();
        let seg = sub_increment_bounds(a1, a2, h, 54).unwrap();
        // Worst: the 4 extras all incorrect → (30/100, 30/54).
        assert_eq!(seg.t_range, (30, 34));
        assert!((seg.worst.0 - 0.30).abs() < 1e-12);
        assert!((seg.worst.1 - 30.0 / 54.0).abs() < 1e-12);
        // Best: all 4 correct → (34/100, 34/54).
        assert!((seg.best.0 - 0.34).abs() < 1e-12);
        assert!((seg.best.1 - 34.0 / 54.0).abs() < 1e-12);
    }

    #[test]
    fn extras_capped_by_increment_composition() {
        let (a1, a2, h) = figure13();
        // ΔT = 6, ΔI = 14. At A' = 68 the 18 extras contain at least
        // 18 − 14 = 4 and at most 6 correct ones.
        let seg = sub_increment_bounds(a1, a2, h, 68).unwrap();
        assert_eq!(seg.t_range, (34, 36));
        assert!((seg.best.1 - 36.0 / 68.0).abs() < 1e-12);
        assert!((seg.worst.1 - 34.0 / 68.0).abs() < 1e-12);
    }

    #[test]
    fn segment_degenerates_at_anchor_points() {
        let (a1, a2, h) = figure13();
        let at1 = sub_increment_bounds(a1, a2, h, 50).unwrap();
        assert_eq!(at1.t_range, (30, 30));
        assert_eq!(at1.worst, at1.best);
        let at2 = sub_increment_bounds(a1, a2, h, 70).unwrap();
        assert_eq!(at2.t_range, (36, 36));
        assert!((at2.best.0 - 0.36).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_not_linear_interpolation() {
        // The paper: "taking the point halfway between worst and best case
        // is not the same as linear interpolation between δ1 and δ2."
        let (a1, a2, h) = figure13();
        let mids = midpoint_rule(a1, a2, h).unwrap();
        // Linear interpolation of (R, P) between the anchors at A' = 60:
        let t = (60.0 - 50.0) / 20.0;
        let lin_r = 0.30 + t * (0.36 - 0.30);
        let lin_p = 0.60 + t * (36.0 / 70.0 - 0.60);
        let mid = mids[10]; // A' = 60
        assert!(
            (mid.0 - lin_r).abs() > 1e-6 || (mid.1 - lin_p).abs() > 1e-6,
            "midpoint {mid:?} should differ from linear ({lin_r}, {lin_p})"
        );
    }

    #[test]
    fn three_sections_in_midpoints() {
        // Near the anchors only a few extras are unknown; the midpoint
        // trajectory has three regimes (paper: "three sections observable
        // in the halfway-points"): T-range width grows, saturates at
        // min(ΔT, ΔI), then shrinks.
        let (a1, a2, h) = figure13();
        let widths: Vec<usize> = sub_increment_sweep(a1, a2, h)
            .unwrap()
            .iter()
            .map(|s| s.t_range.1 - s.t_range.0)
            .collect();
        let max_width = *widths.iter().max().unwrap();
        assert_eq!(max_width, 6); // min(ΔT, ΔI) = min(6, 14)
                                  // Monotone up to the plateau, monotone down after it.
        let first_max = widths.iter().position(|&w| w == max_width).unwrap();
        let last_max = widths.iter().rposition(|&w| w == max_width).unwrap();
        assert!(widths[..first_max].windows(2).all(|w| w[0] <= w[1]));
        assert!(widths[last_max..].windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn segment_contains_every_admissible_t() {
        let (a1, a2, h) = figure13();
        let seg = sub_increment_bounds(a1, a2, h, 60).unwrap();
        for t in seg.t_range.0..=seg.t_range.1 {
            let r = t as f64 / h as f64;
            let p = t as f64 / 60.0;
            assert!(seg.contains(r, p, 1e-12));
        }
        // Outside the range: not contained.
        let t_out = seg.t_range.1 + 1;
        assert!(!seg.contains(t_out as f64 / h as f64, t_out as f64 / 60.0, 1e-12));
    }

    #[test]
    fn validation_errors() {
        let (a1, a2, h) = figure13();
        assert!(sub_increment_bounds(a1, a2, 0, 54).is_err());
        assert!(sub_increment_bounds(a1, a2, h, 49).is_err());
        assert!(sub_increment_bounds(a1, a2, h, 71).is_err());
        assert!(sub_increment_bounds(a2, a1, h, 60).is_err());
    }

    #[test]
    fn sweep_covers_every_count_once() {
        let (a1, a2, h) = figure13();
        let sweep = sub_increment_sweep(a1, a2, h).unwrap();
        assert_eq!(sweep.len(), 21);
        assert_eq!(sweep[0].answers, 50);
        assert_eq!(sweep[20].answers, 70);
    }
}

//! The incremental bound procedure of §3.2 (four steps).
//!
//! Computing the worst case independently at each threshold ignores what
//! is already known about *earlier* thresholds: if 7 of S2's first 32
//! answers are provably correct, a later threshold cannot drop below
//! those 7. The paper's procedure:
//!
//! 1. fix the threshold grid `0, δ1, …, δn` of the original measurements;
//! 2. decompose S1's curve into increments (Equations 7–8 / count deltas);
//! 3. apply the best/worst-case formulas (Eqs. 1–6) to every increment;
//! 4. accumulate increment bounds back into per-threshold bounds.
//!
//! In count space the accumulation is exact integer arithmetic. The
//! worked example of Figure 8 (naive worst-case precision `1/16` at δ2
//! tightening to `7/48`) is a unit test below.

use crate::error::BoundsError;
use crate::increment::curve_increments;
use crate::pointwise::{
    best_case_counts, pointwise_bounds_from_counts, worst_case_counts, PointBounds, PrEstimate,
};
use serde::{Deserialize, Serialize};
use smx_eval::{Counts, PrCurve};

/// Bounds at one threshold of the grid, naive and incremental.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncrementalPoint {
    /// The threshold δ.
    pub threshold: f64,
    /// S1's cumulative counts at δ.
    pub s1: Counts,
    /// S2's cumulative answer count at δ.
    pub a2: usize,
    /// `|T2|` range `[worst, best]` from the incremental accumulation.
    pub t2_range: (usize, usize),
    /// Per-threshold (naive) bounds, Equations (1)–(6) applied directly.
    pub naive: PointBounds,
    /// Incremental bounds — never looser than `naive`.
    pub incremental: PointBounds,
}

/// The full incremental-bounds result over a threshold grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncrementalBounds {
    truth_size: usize,
    points: Vec<IncrementalPoint>,
}

impl IncrementalBounds {
    /// `|H|` of the S1 measurement.
    pub fn truth_size(&self) -> usize {
        self.truth_size
    }

    /// Per-threshold bound points, ascending in threshold.
    pub fn points(&self) -> &[IncrementalPoint] {
        &self.points
    }

    /// The point at exactly `threshold`, if on the grid.
    pub fn point_at(&self, threshold: f64) -> Option<&IncrementalPoint> {
        self.points.iter().find(|p| p.threshold == threshold)
    }
}

/// Run the four-step procedure.
///
/// `s1_curve` is S1's measured curve (with counts); `a2_sizes[i]` is S2's
/// cumulative answer count at the `i`-th threshold of the curve's grid.
///
/// Fails when the sizes are inconsistent with S2 being a sub-selection of
/// S1 under a shared objective function: lengths must match, `a2` must be
/// non-decreasing, and each increment of S2 must fit inside S1's
/// increment (`Δa2 ≤ Δa1`).
pub fn incremental_bounds(
    s1_curve: &PrCurve,
    a2_sizes: &[usize],
) -> Result<IncrementalBounds, BoundsError> {
    let points = s1_curve.points();
    if a2_sizes.len() != points.len() {
        return Err(BoundsError::LengthMismatch {
            expected: points.len(),
            got: a2_sizes.len(),
        });
    }
    // Validate monotonicity and per-increment containment.
    let mut prev_a2 = 0usize;
    let mut prev_a1 = 0usize;
    for (p, &a2) in points.iter().zip(a2_sizes) {
        if a2 < prev_a2 {
            return Err(BoundsError::NonMonotoneSizes {
                threshold: p.threshold,
            });
        }
        if a2 > p.counts.answers {
            return Err(BoundsError::NotASubSelection {
                threshold: p.threshold,
                s1: p.counts.answers,
                s2: a2,
            });
        }
        let delta_a1 = p.counts.answers - prev_a1;
        let delta_a2 = a2 - prev_a2;
        if delta_a2 > delta_a1 {
            // More new S2 answers than S1 produced in this score band —
            // impossible under a shared objective function.
            return Err(BoundsError::NotASubSelection {
                threshold: p.threshold,
                s1: delta_a1,
                s2: delta_a2,
            });
        }
        prev_a2 = a2;
        prev_a1 = p.counts.answers;
    }

    let truth_size = s1_curve.truth_size();
    let incs1 = curve_increments(s1_curve);
    let mut t2_best_sum = 0usize;
    let mut t2_worst_sum = 0usize;
    let mut prev_a2 = 0usize;
    let mut out = Vec::with_capacity(points.len());
    for ((p, &a2), inc1) in points.iter().zip(a2_sizes).zip(&incs1) {
        let delta_a2 = a2 - prev_a2;
        // Step 3: pointwise formulas on the increment.
        t2_best_sum += best_case_counts(inc1.counts, delta_a2).correct;
        t2_worst_sum += worst_case_counts(inc1.counts, delta_a2).correct;
        prev_a2 = a2;
        // Step 4: accumulate back to cumulative bounds at this threshold.
        let best = Counts::new(a2, t2_best_sum);
        let worst = Counts::new(a2, t2_worst_sum);
        let incremental = PointBounds {
            best: PrEstimate::new(best.precision(), best.recall(truth_size)),
            worst: PrEstimate::new(worst.precision(), worst.recall(truth_size)),
        };
        let naive =
            pointwise_bounds_from_counts(p.counts, truth_size, a2).expect("validated above");
        out.push(IncrementalPoint {
            threshold: p.threshold,
            s1: p.counts,
            a2,
            t2_range: (t2_worst_sum, t2_best_sum),
            naive,
            incremental,
        });
    }
    Ok(IncrementalBounds {
        truth_size,
        points: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The literal numbers of Figure 8.
    fn figure8() -> (PrCurve, Vec<usize>) {
        let curve = PrCurve::from_counts(
            100,
            [(0.1, Counts::new(40, 15)), (0.2, Counts::new(72, 27))],
        )
        .unwrap();
        (curve, vec![32, 48])
    }

    #[test]
    fn figure8_exact_numbers() {
        let (curve, sizes) = figure8();
        let bounds = incremental_bounds(&curve, &sizes).unwrap();
        let d1 = bounds.point_at(0.1).unwrap();
        let d2 = bounds.point_at(0.2).unwrap();

        // δ1: naive and incremental agree on the first increment: P ≥ 7/32.
        assert!((d1.naive.worst.precision - 7.0 / 32.0).abs() < 1e-12);
        assert!((d1.incremental.worst.precision - 7.0 / 32.0).abs() < 1e-12);
        assert_eq!(d1.t2_range.0, 7);

        // δ2: naive worst is 1/16; incremental tightens it to 7/48.
        assert!((d2.naive.worst.precision - 1.0 / 16.0).abs() < 1e-12);
        assert!((d2.incremental.worst.precision - 7.0 / 48.0).abs() < 1e-12);
        // Second increment contributes no guaranteed-correct answers:
        // worst T2 stays 7 (the paper: "41 incorrect answers and no
        // correct ones" in S2's worst-case second increment).
        assert_eq!(d2.t2_range.0, 7);
    }

    #[test]
    fn figure8_best_case_side() {
        let (curve, sizes) = figure8();
        let bounds = incremental_bounds(&curve, &sizes).unwrap();
        let d2 = bounds.point_at(0.2).unwrap();
        // Best case: increment 1 keeps min(15, 32) = 15; increment 2 keeps
        // min(12, 16) = 12 → T2 ≤ 27 of 48.
        assert_eq!(d2.t2_range.1, 27);
        assert!((d2.incremental.best.precision - 27.0 / 48.0).abs() < 1e-12);
        // Naive best: min(27, 48) = 27 → same here (best tightening shows
        // up only when an early increment saturates).
        assert!((d2.naive.best.precision - 27.0 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn incremental_never_looser_than_naive() {
        let curve = PrCurve::from_counts(
            50,
            [
                (0.05, Counts::new(10, 6)),
                (0.10, Counts::new(25, 11)),
                (0.15, Counts::new(45, 13)),
                (0.25, Counts::new(80, 20)),
            ],
        )
        .unwrap();
        for sizes in [
            [10, 20, 30, 40],
            [2, 12, 30, 62],
            [0, 0, 10, 45],
            [10, 25, 45, 80],
        ] {
            let b = incremental_bounds(&curve, &sizes).unwrap();
            for p in b.points() {
                assert!(p.incremental.worst.precision >= p.naive.worst.precision - 1e-12);
                assert!(p.incremental.worst.recall >= p.naive.worst.recall - 1e-12);
                assert!(p.incremental.best.precision <= p.naive.best.precision + 1e-12);
                assert!(p.incremental.best.recall <= p.naive.best.recall + 1e-12);
                assert!(p.t2_range.0 <= p.t2_range.1);
            }
        }
    }

    #[test]
    fn best_case_tightening_shows_when_early_increment_saturates() {
        // S1: first increment all correct (10/10), second all incorrect
        // additions (10 answers, 0 correct).
        let curve =
            PrCurve::from_counts(20, [(0.1, Counts::new(10, 10)), (0.2, Counts::new(20, 10))])
                .unwrap();
        // S2 keeps 2 early answers and everything late: naive best at δ2 is
        // min(10, 12) = 10, but only 2 early answers were kept and the late
        // increment holds no correct ones → incremental best is 2.
        let b = incremental_bounds(&curve, &[2, 12]).unwrap();
        let d2 = b.point_at(0.2).unwrap();
        assert_eq!(d2.t2_range.1, 2);
        assert!((d2.naive.best.precision - 10.0 / 12.0).abs() < 1e-12);
        assert!((d2.incremental.best.precision - 2.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_one_everywhere_collapses() {
        let (curve, _) = figure8();
        let sizes: Vec<usize> = curve.points().iter().map(|p| p.counts.answers).collect();
        let b = incremental_bounds(&curve, &sizes).unwrap();
        for (p, orig) in b.points().iter().zip(curve.points()) {
            for est in [
                p.incremental.best,
                p.incremental.worst,
                p.naive.best,
                p.naive.worst,
            ] {
                assert!((est.precision - orig.precision).abs() < 1e-12);
                assert!((est.recall - orig.recall).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn validation_errors() {
        let (curve, _) = figure8();
        assert!(matches!(
            incremental_bounds(&curve, &[32]),
            Err(BoundsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            incremental_bounds(&curve, &[32, 30]),
            Err(BoundsError::NonMonotoneSizes { .. })
        ));
        assert!(matches!(
            incremental_bounds(&curve, &[41, 48]),
            Err(BoundsError::NotASubSelection { .. })
        ));
        // Cumulatively fine (34 ≤ 40, 72 ≤ 72) but the second S2 increment
        // (38) exceeds S1's (32).
        assert!(matches!(
            incremental_bounds(&curve, &[34, 72]),
            Err(BoundsError::NotASubSelection { .. })
        ));
    }

    #[test]
    fn empty_s2_everywhere() {
        let (curve, _) = figure8();
        let b = incremental_bounds(&curve, &[0, 0]).unwrap();
        for p in b.points() {
            assert_eq!(p.t2_range, (0, 0));
            // Empty-set conventions: precision 1, recall 0.
            assert_eq!(p.incremental.best, PrEstimate::new(1.0, 0.0));
            assert_eq!(p.incremental.worst, PrEstimate::new(1.0, 0.0));
        }
    }
}

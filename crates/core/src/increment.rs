//! Threshold increments — Equations (7)–(8) of §3.2.
//!
//! An increment `δ1 − δ2` contains the answers ranked between two
//! thresholds: `Â^{δ1−δ2} = A^{δ2} \ A^{δ1}`. In count space its
//! precision/recall are simply the count *deltas*; in ratio space the
//! paper derives
//!
//! ```text
//! P̂ = (R2 − R1) / (R2/P2 − R1/P1)      (7)   — independent of |H|
//! R̂ = R2 − R1                          (8)
//! ```
//!
//! [`curve_increments`] decomposes a measured curve into increments and
//! [`recombine_increments`] rebuilds cumulative points, so bounds can be
//! computed increment-by-increment and summed back (§3.2 step 4).

use crate::error::BoundsError;
use serde::{Deserialize, Serialize};
use smx_eval::{Counts, PrCurve};

/// One increment of a measured curve, in count space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncrementCounts {
    /// Lower threshold (exclusive side); the first increment starts at 0.
    pub from: f64,
    /// Upper threshold (inclusive side).
    pub to: f64,
    /// `(|Â|, |T̂|)` — answers and correct answers ranked in `(from, to]`.
    pub counts: Counts,
}

impl IncrementCounts {
    /// Increment precision `|T̂|/|Â|` (1 for an empty increment).
    pub fn precision(&self) -> f64 {
        self.counts.precision()
    }

    /// Increment recall `|T̂|/|H|`.
    pub fn recall(&self, truth_size: usize) -> f64 {
        self.counts.recall(truth_size)
    }
}

/// Decompose a measured curve into per-threshold increments. The first
/// increment spans from threshold `0` (an empty answer set — the paper's
/// `0 − δ1` increment) to the curve's first point.
pub fn curve_increments(curve: &PrCurve) -> Vec<IncrementCounts> {
    let mut prev_threshold = 0.0;
    let mut prev_counts = Counts::default();
    curve
        .points()
        .iter()
        .map(|p| {
            let inc = IncrementCounts {
                from: prev_threshold,
                to: p.threshold,
                counts: p.counts - prev_counts,
            };
            prev_threshold = p.threshold;
            prev_counts = p.counts;
            inc
        })
        .collect()
}

/// Rebuild cumulative `(threshold, Counts)` points from increments —
/// the inverse of [`curve_increments`].
pub fn recombine_increments(increments: &[IncrementCounts]) -> Vec<(f64, Counts)> {
    let mut acc = Counts::default();
    increments
        .iter()
        .map(|inc| {
            acc = acc + inc.counts;
            (inc.to, acc)
        })
        .collect()
}

/// Equation (7): increment precision from two cumulative `(P, R)` points.
///
/// Independent of `|H|` — this is what makes the incremental technique
/// applicable to published curves. Returns an error when the denominator
/// is zero (no growth in answer count between the thresholds).
pub fn increment_precision(p1: f64, r1: f64, p2: f64, r2: f64) -> Result<f64, BoundsError> {
    // R/P = |A|/|H| (cumulative); the denominator is the answer growth
    // normalised by |H|. A zero-precision anchor with nonzero answers
    // makes |A|/|H| unrecoverable from (P, R) alone — the special case
    // §3.2 step 4 points out; count space must be used instead. (An empty
    // answer set has P = 1 by convention, so p = 0 here means |A| > 0.)
    if p1 <= 0.0 || p2 <= 0.0 {
        return Err(BoundsError::BadAnchors(
            "zero precision at an anchor: |A|/|H| unrecoverable from (P, R)",
        ));
    }
    let a1_over_h = r1 / p1;
    let a2_over_h = r2 / p2;
    let denom = a2_over_h - a1_over_h;
    if denom <= 0.0 {
        return Err(BoundsError::BadAnchors(
            "no answer growth between thresholds",
        ));
    }
    Ok(((r2 - r1) / denom).clamp(0.0, 1.0))
}

/// Equation (8): increment recall `R̂ = R2 − R1`.
pub fn increment_recall(r1: f64, r2: f64) -> f64 {
    (r2 - r1).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_eval::{AnswerId, AnswerSet, GroundTruth};

    fn figure8_s1_curve() -> PrCurve {
        // |H| = 100; S1 has 15/40 at δ1=0.1 and 27/72 at δ2=0.2.
        PrCurve::from_counts(
            100,
            [(0.1, Counts::new(40, 15)), (0.2, Counts::new(72, 27))],
        )
        .unwrap()
    }

    #[test]
    fn figure8_increments() {
        let incs = curve_increments(&figure8_s1_curve());
        assert_eq!(incs.len(), 2);
        assert_eq!(incs[0].counts, Counts::new(40, 15));
        // Second increment: 12 correct, 20 incorrect (Figure 8, left).
        assert_eq!(incs[1].counts, Counts::new(32, 12));
        assert_eq!(incs[1].counts.incorrect(), 20);
        assert_eq!((incs[0].from, incs[0].to), (0.0, 0.1));
        assert_eq!((incs[1].from, incs[1].to), (0.1, 0.2));
    }

    #[test]
    fn recombine_is_inverse() {
        let curve = figure8_s1_curve();
        let incs = curve_increments(&curve);
        let rebuilt = recombine_increments(&incs);
        let original: Vec<(f64, Counts)> = curve
            .points()
            .iter()
            .map(|p| (p.threshold, p.counts))
            .collect();
        assert_eq!(rebuilt, original);
    }

    #[test]
    fn equation7_matches_count_space() {
        // Figure 8: P̂^{δ1−δ2}_S1 = 12/32 = 3/8.
        let p = increment_precision(0.375, 0.15, 0.375, 0.27).unwrap();
        assert!((p - 0.375).abs() < 1e-12);
        // And note the paper's observation: Eq. 7 is independent of |H|.
        let p_other_h = increment_precision(0.375, 0.15 / 3.0, 0.375, 0.27 / 3.0).unwrap();
        assert!((p_other_h - 0.375).abs() < 1e-12);
    }

    #[test]
    fn equation7_error_on_no_growth() {
        assert!(increment_precision(0.5, 0.3, 0.5, 0.3).is_err());
        // Shrinking answer sets are invalid anchors, too.
        assert!(increment_precision(0.5, 0.3, 0.9, 0.3).is_err());
    }

    #[test]
    fn equation8_recall_delta() {
        assert!((increment_recall(0.15, 0.27) - 0.12).abs() < 1e-12);
        assert_eq!(increment_recall(0.3, 0.2), 0.0);
    }

    #[test]
    fn increments_from_real_measurement() {
        let answers =
            AnswerSet::new((1..=10).map(|i| (AnswerId(i), (i as f64 / 10.0).min(0.9)))).unwrap();
        let truth = GroundTruth::new([2, 3, 7].map(AnswerId));
        let curve = PrCurve::measure_at_all_scores(&answers, &truth).unwrap();
        let incs = curve_increments(&curve);
        // Increment counts sum to the final cumulative counts.
        let total = incs.iter().fold(Counts::default(), |acc, i| acc + i.counts);
        assert_eq!(total, curve.points().last().unwrap().counts);
        // Each increment matches Eq. 7 evaluated on the cumulative curve,
        // whenever the increment is non-empty.
        let pts = curve.points();
        for (k, inc) in incs.iter().enumerate().skip(1) {
            if inc.counts.answers == 0 {
                continue;
            }
            let (prev, cur) = (&pts[k - 1], &pts[k]);
            // Eq. 7 needs positive precision at both anchors (§3.2 step 4).
            if prev.precision <= 0.0 || cur.precision <= 0.0 {
                continue;
            }
            let p_hat = increment_precision(prev.precision, prev.recall, cur.precision, cur.recall)
                .unwrap();
            assert!((p_hat - inc.precision()).abs() < 1e-9);
            let r_hat = increment_recall(prev.recall, cur.recall);
            assert!((r_hat - inc.recall(truth.len())).abs() < 1e-9);
        }
    }

    #[test]
    fn increment_pr_accessors() {
        let inc = IncrementCounts {
            from: 0.0,
            to: 0.1,
            counts: Counts::new(8, 2),
        };
        assert!((inc.precision() - 0.25).abs() < 1e-12);
        assert!((inc.recall(10) - 0.2).abs() < 1e-12);
    }
}

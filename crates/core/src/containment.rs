//! Verifying the sub-selection premise and deriving ratio curves from
//! actual answer sets.
//!
//! The bounds are only valid under the paper's premise: S2 uses the same
//! objective function as S1, hence `A_S2^δ ⊆ A_S1^δ` for *every* δ. Given
//! both systems' actual outputs, [`verify_subset_at_all_thresholds`]
//! checks the premise exactly, and [`ratio_curve_between`] measures the
//! `Â(δ)` curve (Figure 10) that the envelope consumes.

use crate::error::BoundsError;
use crate::ratio::RatioCurve;
use smx_eval::AnswerSet;

/// Check that `s2 ⊆ s1` as ranked runs: every S2 answer appears in S1
/// **with the same score**. Together with set inclusion this implies
/// `A_S2^δ ⊆ A_S1^δ` at every threshold, which is what the bounds need.
pub fn verify_subset_at_all_thresholds(s2: &AnswerSet, s1: &AnswerSet) -> Result<(), BoundsError> {
    s2.is_subset_of(s1)?;
    if !s2.scores_consistent_with(s1) {
        return Err(BoundsError::BadAnchors(
            "S2 assigns different scores than S1 — not the same objective function",
        ));
    }
    Ok(())
}

/// Measure the size-ratio curve `Â(δ) = |A_S2^δ| / |A_S1^δ|` at the given
/// thresholds. Verifies the premise first.
pub fn ratio_curve_between(
    s2: &AnswerSet,
    s1: &AnswerSet,
    thresholds: &[f64],
) -> Result<RatioCurve, BoundsError> {
    verify_subset_at_all_thresholds(s2, s1)?;
    RatioCurve::from_counts(
        thresholds
            .iter()
            .map(|&t| (t, s2.count_at(t), s1.count_at(t))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_eval::AnswerId;

    fn s1() -> AnswerSet {
        AnswerSet::new((1..=10).map(|i| (AnswerId(i), i as f64 / 10.0))).unwrap()
    }

    #[test]
    fn subset_with_same_scores_accepted() {
        let s1 = s1();
        let s2 = s1.filter(|id| id.0 % 2 == 0);
        assert!(verify_subset_at_all_thresholds(&s2, &s1).is_ok());
    }

    #[test]
    fn foreign_answer_rejected() {
        let s1 = s1();
        let s2 = AnswerSet::new([(AnswerId(99), 0.5)]).unwrap();
        assert!(matches!(
            verify_subset_at_all_thresholds(&s2, &s1),
            Err(BoundsError::Eval(_))
        ));
    }

    #[test]
    fn rescored_answer_rejected() {
        let s1 = s1();
        // Same id, different score — a different objective function.
        let s2 = AnswerSet::new([(AnswerId(3), 0.9)]).unwrap();
        assert!(matches!(
            verify_subset_at_all_thresholds(&s2, &s1),
            Err(BoundsError::BadAnchors(_))
        ));
    }

    #[test]
    fn ratio_curve_measures_per_threshold() {
        let s1 = s1();
        let s2 = s1.filter(|id| id.0 <= 5 || id.0 == 10);
        let curve = ratio_curve_between(&s2, &s1, &[0.5, 1.0]).unwrap();
        assert!((curve.at(0.5).unwrap().get() - 1.0).abs() < 1e-12);
        assert!((curve.at(1.0).unwrap().get() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ratio_is_one_below_any_answer() {
        let s1 = s1();
        let s2 = s1.filter(|id| id.0 > 5);
        let curve = ratio_curve_between(&s2, &s1, &[0.05]).unwrap();
        // Both empty at δ=0.05: ratio defined as 1.
        assert!(curve.at(0.05).unwrap().is_one());
    }
}

//! Error type for bounds computations.

use smx_eval::EvalError;

/// Errors produced while deriving effectiveness bounds.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundsError {
    /// A size ratio was outside `[0, 1]` or non-finite.
    InvalidRatio(f64),
    /// `|A_S2| > |A_S1|` at some threshold — S2 is not a sub-selection,
    /// so the "same objective function" premise is violated.
    NotASubSelection {
        /// Threshold at which the violation was observed.
        threshold: f64,
        /// S1's answer count there.
        s1: usize,
        /// S2's answer count there.
        s2: usize,
    },
    /// Input series have mismatched lengths.
    LengthMismatch {
        /// Required number of entries (the S1 grid size).
        expected: usize,
        /// Number actually provided.
        got: usize,
    },
    /// S2's answer counts decreased with rising threshold.
    NonMonotoneSizes {
        /// The threshold at which the count decreased.
        threshold: f64,
    },
    /// The assumed `|H|` must be positive.
    InvalidTruthSize,
    /// An anchor pair for sub-increment bounds was inconsistent
    /// (`counts at δ2` must dominate `counts at δ1`).
    BadAnchors(&'static str),
    /// Propagated evaluation error.
    Eval(EvalError),
}

impl From<EvalError> for BoundsError {
    fn from(e: EvalError) -> Self {
        BoundsError::Eval(e)
    }
}

impl std::fmt::Display for BoundsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundsError::InvalidRatio(r) => write!(f, "size ratio {r} outside [0, 1]"),
            BoundsError::NotASubSelection { threshold, s1, s2 } => write!(
                f,
                "S2 produced {s2} answers but S1 only {s1} at threshold {threshold}; \
                 S2 is not a sub-selection of S1"
            ),
            BoundsError::LengthMismatch { expected, got } => {
                write!(f, "expected {expected} size entries, got {got}")
            }
            BoundsError::NonMonotoneSizes { threshold } => {
                write!(f, "S2 answer counts decrease at threshold {threshold}")
            }
            BoundsError::InvalidTruthSize => write!(f, "assumed |H| must be positive"),
            BoundsError::BadAnchors(msg) => write!(f, "inconsistent anchor points: {msg}"),
            BoundsError::Eval(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl std::error::Error for BoundsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BoundsError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(BoundsError::InvalidRatio(1.5).to_string().contains("1.5"));
        let e = BoundsError::NotASubSelection {
            threshold: 0.2,
            s1: 10,
            s2: 12,
        };
        assert!(e.to_string().contains("not a sub-selection"));
        assert!(BoundsError::from(EvalError::EmptyTruth)
            .to_string()
            .contains("evaluation"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e = BoundsError::from(EvalError::EmptyTruth);
        assert!(e.source().is_some());
        assert!(BoundsError::InvalidTruthSize.source().is_none());
    }
}

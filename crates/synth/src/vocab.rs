//! Domain vocabularies with synonym and abbreviation tables.
//!
//! Generated schemas draw element names from a domain's word pool;
//! perturbations rename through the synonym/abbreviation tables, which is
//! what makes matched pairs *similar but not identical* — the regime where
//! matching heuristics (and hence the effectiveness trade-off) are
//! interesting.

use serde::{Deserialize, Serialize};

/// Built-in vocabulary domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Books, articles, authors — the classic `bib` examples.
    Publications,
    /// Customers, orders, products.
    Commerce,
    /// Employees, departments, salaries.
    HumanResources,
    /// Trips, bookings, hotels.
    Travel,
}

impl Domain {
    /// All built-in domains.
    pub const ALL: [Domain; 4] = [
        Domain::Publications,
        Domain::Commerce,
        Domain::HumanResources,
        Domain::Travel,
    ];
}

/// A word pool with synonym and abbreviation tables.
///
/// Not serialisable: vocabularies are static tables reconstructed from
/// their [`Domain`].
#[derive(Debug, Clone, PartialEq)]
pub struct Vocabulary {
    domain: Domain,
    containers: Vec<&'static str>,
    leaves: Vec<&'static str>,
    synonyms: Vec<(&'static str, &'static str)>,
    abbreviations: Vec<(&'static str, &'static str)>,
}

impl Vocabulary {
    /// The built-in vocabulary for `domain`.
    pub fn for_domain(domain: Domain) -> Self {
        match domain {
            Domain::Publications => Vocabulary {
                domain,
                containers: vec![
                    "bibliography",
                    "book",
                    "article",
                    "journal",
                    "proceedings",
                    "chapter",
                    "authorList",
                    "publisherInfo",
                    "edition",
                    "series",
                ],
                leaves: vec![
                    "title",
                    "subtitle",
                    "author",
                    "editor",
                    "year",
                    "isbn",
                    "issn",
                    "publisher",
                    "pages",
                    "volume",
                    "issue",
                    "abstract",
                    "keyword",
                    "language",
                    "price",
                ],
                synonyms: vec![
                    ("author", "writer"),
                    ("author", "creator"),
                    ("title", "name"),
                    ("year", "pubYear"),
                    ("publisher", "press"),
                    ("price", "cost"),
                    ("abstract", "summary"),
                    ("keyword", "term"),
                ],
                abbreviations: vec![
                    ("publisher", "publ"),
                    ("volume", "vol"),
                    ("number", "no"),
                    ("abstract", "abstr"),
                    ("edition", "ed"),
                ],
            },
            Domain::Commerce => Vocabulary {
                domain,
                containers: vec![
                    "store",
                    "customer",
                    "order",
                    "orderLine",
                    "product",
                    "invoice",
                    "payment",
                    "shipment",
                    "cart",
                    "catalog",
                ],
                leaves: vec![
                    "customerName",
                    "orderDate",
                    "quantity",
                    "unitPrice",
                    "totalAmount",
                    "sku",
                    "address",
                    "city",
                    "zipCode",
                    "email",
                    "phone",
                    "status",
                    "discount",
                    "currency",
                    "taxRate",
                ],
                synonyms: vec![
                    ("customerName", "clientName"),
                    ("orderDate", "purchaseDate"),
                    ("quantity", "amount"),
                    ("unitPrice", "itemCost"),
                    ("totalAmount", "grandTotal"),
                    ("address", "street"),
                    ("zipCode", "postalCode"),
                    ("phone", "telephone"),
                ],
                abbreviations: vec![
                    ("customerName", "custName"),
                    ("quantity", "qty"),
                    ("number", "num"),
                    ("address", "addr"),
                    ("telephone", "tel"),
                ],
            },
            Domain::HumanResources => Vocabulary {
                domain,
                containers: vec![
                    "company",
                    "employee",
                    "department",
                    "position",
                    "contract",
                    "team",
                    "payroll",
                    "benefits",
                    "review",
                    "office",
                ],
                leaves: vec![
                    "firstName",
                    "lastName",
                    "salary",
                    "hireDate",
                    "employeeId",
                    "manager",
                    "grade",
                    "bonus",
                    "location",
                    "budget",
                    "headcount",
                    "startDate",
                    "endDate",
                ],
                synonyms: vec![
                    ("salary", "wage"),
                    ("salary", "compensation"),
                    ("manager", "supervisor"),
                    ("hireDate", "joinDate"),
                    ("location", "site"),
                    ("grade", "level"),
                ],
                abbreviations: vec![
                    ("employeeId", "empId"),
                    ("department", "dept"),
                    ("manager", "mgr"),
                    ("number", "nr"),
                ],
            },
            Domain::Travel => Vocabulary {
                domain,
                containers: vec![
                    "agency",
                    "trip",
                    "booking",
                    "hotel",
                    "flight",
                    "itinerary",
                    "passenger",
                    "vehicle",
                    "excursion",
                    "insurance",
                ],
                leaves: vec![
                    "destination",
                    "departureDate",
                    "returnDate",
                    "airline",
                    "seatClass",
                    "roomType",
                    "checkIn",
                    "checkOut",
                    "fare",
                    "duration",
                    "rating",
                    "guests",
                ],
                synonyms: vec![
                    ("destination", "target"),
                    ("departureDate", "startDate"),
                    ("fare", "price"),
                    ("duration", "length"),
                    ("guests", "occupants"),
                    ("rating", "stars"),
                ],
                abbreviations: vec![
                    ("departureDate", "depDate"),
                    ("destination", "dest"),
                    ("passenger", "pax"),
                    ("number", "no"),
                ],
            },
        }
    }

    /// This vocabulary's domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Container (interior-node) name pool.
    pub fn containers(&self) -> &[&'static str] {
        &self.containers
    }

    /// Leaf name pool.
    pub fn leaves(&self) -> &[&'static str] {
        &self.leaves
    }

    /// Synonyms of `name` (both directions of the table).
    pub fn synonyms_of(&self, name: &str) -> Vec<&'static str> {
        self.synonyms
            .iter()
            .filter_map(|&(a, b)| {
                if a == name {
                    Some(b)
                } else if b == name {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Abbreviations of `name`.
    pub fn abbreviations_of(&self, name: &str) -> Vec<&'static str> {
        self.abbreviations
            .iter()
            .filter_map(|&(full, short)| (full == name).then_some(short))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_domains_have_nonempty_pools() {
        for d in Domain::ALL {
            let v = Vocabulary::for_domain(d);
            assert!(v.containers().len() >= 8, "{d:?} containers");
            assert!(v.leaves().len() >= 10, "{d:?} leaves");
            assert!(!v.synonyms_of(v.synonyms[0].0).is_empty());
            assert_eq!(v.domain(), d);
        }
    }

    #[test]
    fn synonyms_bidirectional() {
        let v = Vocabulary::for_domain(Domain::Publications);
        assert!(v.synonyms_of("author").contains(&"writer"));
        assert!(v.synonyms_of("writer").contains(&"author"));
        assert!(v.synonyms_of("qwerty").is_empty());
    }

    #[test]
    fn abbreviations_one_directional() {
        let v = Vocabulary::for_domain(Domain::Commerce);
        assert!(v.abbreviations_of("quantity").contains(&"qty"));
        assert!(v.abbreviations_of("qty").is_empty());
    }

    #[test]
    fn pools_are_distinct_words() {
        for d in Domain::ALL {
            let v = Vocabulary::for_domain(d);
            let mut all: Vec<&str> = v.containers().to_vec();
            all.extend(v.leaves());
            let n = all.len();
            all.sort();
            all.dedup();
            assert_eq!(all.len(), n, "{d:?} has duplicate pool entries");
        }
    }
}

//! Reusable proptest strategies over synthetic matching inputs.
//!
//! The workspace's property suites each used to roll their own input
//! generators — scenario shapes in the bound-admissibility gate, label
//! pools and fixture repositories in the LRU suite. This module is the
//! shared vocabulary: strategies for [`ScenarioConfig`]s and generated
//! [`Scenario`]s, matching thresholds, candidate budgets (explicitly
//! covering the `None`/`0`/`≥ repository` extremes the certificates
//! must survive), plus the overlapping label pool, edit-noised query
//! labels, and small fixture schemas/repositories the store suites
//! exercise eviction with.
//!
//! Everything composes with the vendored mini-proptest: deterministic
//! per-test seeding, no shrinking, so keep the shapes small enough that
//! a raw failure report is readable.

use crate::scenario::{Scenario, ScenarioConfig};
use crate::vocab::Domain;
use proptest::prelude::*;
use smx_repo::{Repository, StoreConfig};
use smx_xml::{PrimitiveType, Schema, SchemaBuilder};

/// Query/label vocabulary the store suites draw from — deliberately
/// overlapping across fixture schemas, so interleavings revisit evicted
/// rows instead of touching every label once.
pub const LABEL_POOL: &[&str] = &[
    "title",
    "bookTitle",
    "isbn",
    "author",
    "price",
    "orderDate",
    "customerName",
    "qty",
    "shipAddress",
    "year",
    "publisher",
    "edition",
];

/// Strategy over indices into [`LABEL_POOL`].
pub fn pool_indices() -> std::ops::Range<usize> {
    0..LABEL_POOL.len()
}

/// Strategy over pool labels themselves.
pub fn pool_labels() -> impl Strategy<Value = &'static str> {
    pool_indices().prop_map(|i| LABEL_POOL[i])
}

/// Strategy over edit-noised pool labels: a clean pool label, or one
/// damaged by a single case flip, deletion, duplication, or a noise
/// suffix — the kind of near-miss vocabulary perturbed schemas carry,
/// useful for driving caches and matchers with queries that are close
/// to, but not interned as, repository labels.
pub fn noisy_labels() -> impl Strategy<Value = String> {
    (pool_indices(), 0u8..5, any::<prop::sample::Index>()).prop_map(|(i, kind, at)| {
        let base = LABEL_POOL[i];
        let chars: Vec<char> = base.chars().collect();
        let pos = at.index(chars.len());
        match kind {
            // Clean pool label.
            0 => base.to_string(),
            // Case flip at one position.
            1 => chars
                .iter()
                .enumerate()
                .map(|(j, &c)| {
                    if j == pos {
                        if c.is_uppercase() {
                            c.to_ascii_lowercase()
                        } else {
                            c.to_ascii_uppercase()
                        }
                    } else {
                        c
                    }
                })
                .collect(),
            // Single-character deletion (kept non-empty).
            2 if chars.len() > 1 => chars
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != pos)
                .map(|(_, &c)| c)
                .collect(),
            // Single-character duplication.
            3 => {
                let mut out: String = chars[..=pos].iter().collect();
                out.push(chars[pos]);
                out.extend(&chars[pos + 1..]);
                out
            }
            // Noise suffix.
            _ => format!("{base}X"),
        }
    })
}

/// A two-leaf fixture schema containing `label` plus a salted fresh
/// label — the unit the store suites ingest to grow the interner
/// mid-run.
pub fn schema_with_label(label: &str, salt: usize) -> Schema {
    SchemaBuilder::new(format!("s{salt}"))
        .root(format!("host{salt}"))
        .leaf(label, PrimitiveType::String)
        .leaf(format!("extra{salt}"), PrimitiveType::String)
        .build()
}

/// A small fixed repository sharing the pool vocabulary: a bibliography
/// schema and a commerce schema, enough label overlap with
/// [`LABEL_POOL`] that bounded caches hit, miss, and evict.
pub fn small_repository(config: StoreConfig) -> Repository {
    let mut repo = Repository::with_store_config(config);
    repo.add(
        SchemaBuilder::new("bib")
            .root("bibliography")
            .child("book", |b| {
                b.leaf("title", PrimitiveType::String)
                    .leaf("author", PrimitiveType::String)
                    .leaf("year", PrimitiveType::Integer)
            })
            .build(),
    );
    repo.add(
        SchemaBuilder::new("shop")
            .root("store")
            .child("order", |o| {
                o.leaf("orderDate", PrimitiveType::Date)
                    .leaf("price", PrimitiveType::Decimal)
            })
            .build(),
    );
    repo
}

/// Strategy over all four vocabulary domains.
pub fn domains() -> impl Strategy<Value = Domain> {
    (0usize..4).prop_map(|i| {
        [
            Domain::Publications,
            Domain::Commerce,
            Domain::HumanResources,
            Domain::Travel,
        ][i]
    })
}

/// Strategy over small, property-test-sized [`ScenarioConfig`]s:
/// 2–4 personal nodes embedded into 4–8-node hosts, 2–4 derived plus
/// 1–3 noise schemas (so repositories hold at most
/// [`MAX_SCENARIO_SCHEMAS`] schemas), perturbation from gentle to
/// savage, across all domains and 64 seeds.
pub fn scenario_configs() -> impl Strategy<Value = ScenarioConfig> {
    (
        (0u64..64, domains()),
        (2usize..5, 4usize..9),
        (2usize..5, 1usize..4),
        0usize..3,
    )
        .prop_map(
            |((seed, domain), (personal_nodes, host_nodes), (derived, noise), strength_idx)| {
                ScenarioConfig {
                    domain,
                    personal_nodes,
                    derived_schemas: derived,
                    noise_schemas: noise,
                    host_nodes,
                    perturbation_strength: [0.4, 0.7, 0.9][strength_idx],
                    seed,
                }
            },
        )
}

/// Largest repository size (in schemas) [`scenario_configs`] generates
/// — budgets at or above this cap nothing.
pub const MAX_SCENARIO_SCHEMAS: usize = 7;

/// Strategy over fully generated [`Scenario`]s from
/// [`scenario_configs`].
pub fn scenarios() -> impl Strategy<Value = Scenario> {
    scenario_configs().prop_map(Scenario::generate)
}

/// Strategy over matching thresholds δ_max, from strict to permissive.
pub fn thresholds() -> impl Strategy<Value = f64> {
    (0usize..3).prop_map(|i| [0.15, 0.3, 0.45][i])
}

/// Strategy over candidate budgets, biased to the certificates' edge
/// cases: `None` (auto — exact tier), `Some(0)` (everything pruned),
/// small finite budgets, and budgets at or beyond `repo_size` (nothing
/// capped). Pass the worst-case repository size; for
/// [`scenario_configs`] scenarios that is [`MAX_SCENARIO_SCHEMAS`].
pub fn budgets(repo_size: usize) -> impl Strategy<Value = Option<usize>> {
    prop_oneof![
        Just(None),
        Just(Some(0usize)),
        (1..repo_size.max(2)).prop_map(Some),
        Just(Some(repo_size)),
        Just(Some(usize::MAX)),
    ]
}

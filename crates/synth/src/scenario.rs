//! End-to-end scenario assembly.
//!
//! A scenario is one matching problem `Q` with machine-known ground truth:
//!
//! 1. generate a small **personal schema** from a domain vocabulary;
//! 2. build `derived_schemas` repository schemas, each a random *host*
//!    schema with a **perturbed copy** of the personal schema grafted
//!    into it — the graft images are the correct mapping targets;
//! 3. add `noise_schemas` plain random schemas from the same domain
//!    (hard negatives: they reuse the same vocabulary);
//! 4. record, per derived schema whose personal copy survived perturbation
//!    completely, the [`CorrectMapping`] from personal elements to graft
//!    images. Partial survivals stay in the repository as distractors but
//!    contribute no correct mapping — like a human judge rejecting an
//!    incomplete match.

use crate::generator::{generate_schema, SchemaGenConfig};
use crate::perturb::perturb_schema;
use crate::vocab::{Domain, Vocabulary};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use smx_repo::{Repository, SchemaId};
use smx_xml::{NodeId, Schema};

/// Scenario shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Vocabulary domain.
    pub domain: Domain,
    /// Personal-schema size in nodes (root + leaves/containers).
    pub personal_nodes: usize,
    /// Number of repository schemas containing a grafted copy.
    pub derived_schemas: usize,
    /// Number of pure-noise repository schemas.
    pub noise_schemas: usize,
    /// Size of each host/noise schema in nodes.
    pub host_nodes: usize,
    /// Perturbation strength in `[0, 1]` applied to grafted copies.
    pub perturbation_strength: f64,
    /// RNG seed — scenarios are fully reproducible.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            domain: Domain::Publications,
            personal_nodes: 5,
            derived_schemas: 25,
            noise_schemas: 15,
            host_nodes: 10,
            perturbation_strength: 0.5,
            seed: 42,
        }
    }
}

/// One known-correct mapping: personal node → repository node, for every
/// personal node, all within one repository schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorrectMapping {
    /// The repository schema containing the graft.
    pub schema: SchemaId,
    /// `(personal node, repository node)` pairs in personal preorder.
    pub targets: Vec<(NodeId, NodeId)>,
}

/// A complete matching problem with known ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// The user's personal schema (the query).
    pub personal: Schema,
    /// The repository to search.
    pub repository: Repository,
    /// The known-correct mappings — the scenario's `H` in element terms.
    pub correct: Vec<CorrectMapping>,
    /// The configuration that produced this scenario.
    pub config: ScenarioConfig,
}

/// Graft `sub`'s tree under `at` in `host`; returns `sub`-id → `host`-id.
fn graft(host: &mut Schema, at: NodeId, sub: &Schema) -> Vec<Option<NodeId>> {
    let mut map: Vec<Option<NodeId>> = vec![None; sub.len()];
    let Some(sub_root) = sub.root() else {
        return map;
    };
    fn rec(
        host: &mut Schema,
        parent: NodeId,
        sub: &Schema,
        node: NodeId,
        map: &mut Vec<Option<NodeId>>,
    ) {
        let new_id = host
            .add_child(parent, sub.node(node).clone_shallow())
            .expect("parent exists");
        map[node.index()] = Some(new_id);
        for &c in &sub.node(node).children {
            rec(host, new_id, sub, c, map);
        }
    }
    rec(host, at, sub, sub_root, &mut map);
    map
}

/// Shallow node clone without tree links (used by [`graft`]).
trait CloneShallow {
    fn clone_shallow(&self) -> smx_xml::Node;
}

impl CloneShallow for smx_xml::Node {
    fn clone_shallow(&self) -> smx_xml::Node {
        let mut n = smx_xml::Node::element(self.name.clone());
        n.kind = self.kind;
        n.ty = self.ty;
        n.occurs = self.occurs;
        n
    }
}

impl Scenario {
    /// Generate a scenario from `config`.
    pub fn generate(config: ScenarioConfig) -> Scenario {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let vocab = Vocabulary::for_domain(config.domain);
        let personal_cfg = SchemaGenConfig {
            domain: config.domain,
            nodes: config.personal_nodes,
            max_depth: 2,
            max_fanout: config.personal_nodes,
        };
        let mut personal = generate_schema("personal", &personal_cfg, &mut rng);
        personal.set_name("personal");

        let host_cfg = SchemaGenConfig {
            domain: config.domain,
            nodes: config.host_nodes,
            max_depth: 4,
            max_fanout: 4,
        };
        let mut repository = Repository::new();
        let mut correct = Vec::new();
        for d in 0..config.derived_schemas {
            let mut host = generate_schema(&format!("derived{d}"), &host_cfg, &mut rng);
            let (copy, prov) =
                perturb_schema(&personal, &vocab, config.perturbation_strength, &mut rng);
            // Graft under a random host node.
            let at_idx = rng.random_range(0..host.len());
            let at = host.node_ids().nth(at_idx).expect("index in range");
            let graft_map = graft(&mut host, at, &copy);
            let schema_id = repository.add(host);
            // Full survival ⇒ a correct mapping; partial ⇒ distractor only.
            let mut targets = Vec::with_capacity(personal.len());
            let mut complete = true;
            for u in personal.node_ids() {
                match prov.image_of(u).and_then(|v| graft_map[v.index()]) {
                    Some(g) => targets.push((u, g)),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete {
                correct.push(CorrectMapping {
                    schema: schema_id,
                    targets,
                });
            }
        }
        for n in 0..config.noise_schemas {
            let noise = generate_schema(&format!("noise{n}"), &host_cfg, &mut rng);
            repository.add(noise);
        }
        Scenario {
            personal,
            repository,
            correct,
            config,
        }
    }

    /// `|H|` in mapping terms: the number of known-correct mappings.
    pub fn truth_size(&self) -> usize {
        self.correct.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_reproducibly() {
        let a = Scenario::generate(ScenarioConfig::default());
        let b = Scenario::generate(ScenarioConfig::default());
        assert_eq!(a.personal, b.personal);
        assert_eq!(a.repository, b.repository);
        assert_eq!(a.correct, b.correct);
        let c = Scenario::generate(ScenarioConfig {
            seed: 43,
            ..Default::default()
        });
        assert!(a.repository != c.repository);
    }

    #[test]
    fn repository_has_expected_schema_count() {
        let cfg = ScenarioConfig {
            derived_schemas: 12,
            noise_schemas: 7,
            ..Default::default()
        };
        let sc = Scenario::generate(cfg);
        assert_eq!(sc.repository.len(), 19);
        assert!(sc.personal.validate().is_ok());
        for (_, schema) in sc.repository.iter() {
            assert!(schema.validate().is_ok());
        }
    }

    #[test]
    fn correct_mappings_point_at_real_similar_elements() {
        let sc = Scenario::generate(ScenarioConfig::default());
        assert!(sc.truth_size() > 0, "no complete graft survived");
        for cm in &sc.correct {
            assert_eq!(cm.targets.len(), sc.personal.len());
            let schema = sc.repository.schema(cm.schema);
            for &(p, r) in &cm.targets {
                assert!(p.index() < sc.personal.len());
                assert!(r.index() < schema.len());
                // Graft preserves the type unless perturbed; at default
                // strength names stay relatable via the vocabulary — at
                // minimum the target exists and is reachable.
                assert!(schema.try_node(r).is_ok());
            }
            // Structural shape preserved: the image of the personal root is
            // an ancestor of (or equal to) every other image.
            let root_img = cm.targets[0].1;
            for &(_, r) in &cm.targets[1..] {
                assert!(
                    schema.is_ancestor(root_img, r),
                    "root image {root_img} not an ancestor of {r}"
                );
            }
        }
    }

    #[test]
    fn zero_strength_grafts_are_verbatim_copies() {
        let cfg = ScenarioConfig {
            perturbation_strength: 0.0,
            ..Default::default()
        };
        let sc = Scenario::generate(cfg);
        // Every derived schema yields a complete correct mapping.
        assert_eq!(sc.truth_size(), cfg.derived_schemas);
        for cm in &sc.correct {
            let schema = sc.repository.schema(cm.schema);
            for &(p, r) in &cm.targets {
                assert_eq!(sc.personal.node(p).name, schema.node(r).name);
                assert_eq!(sc.personal.node(p).ty, schema.node(r).ty);
            }
        }
    }

    #[test]
    fn heavy_perturbation_loses_some_mappings() {
        let light = Scenario::generate(ScenarioConfig {
            perturbation_strength: 0.1,
            seed: 7,
            ..Default::default()
        });
        let heavy = Scenario::generate(ScenarioConfig {
            perturbation_strength: 1.0,
            seed: 7,
            ..Default::default()
        });
        assert!(heavy.truth_size() <= light.truth_size());
    }

    #[test]
    fn personal_schema_is_small() {
        let sc = Scenario::generate(ScenarioConfig {
            personal_nodes: 4,
            ..Default::default()
        });
        assert!(sc.personal.len() <= 4);
        assert!(!sc.personal.is_empty());
    }
}

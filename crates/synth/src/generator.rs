//! Seeded random schema generation.

use crate::vocab::{Domain, Vocabulary};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use smx_xml::{Node, NodeId, Occurs, PrimitiveType, Schema};

/// Shape parameters for generated schemas.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchemaGenConfig {
    /// Vocabulary domain to draw names from.
    pub domain: Domain,
    /// Total number of nodes (including the root); at least 1.
    pub nodes: usize,
    /// Maximum depth (root = 0).
    pub max_depth: usize,
    /// Maximum children per node.
    pub max_fanout: usize,
}

impl Default for SchemaGenConfig {
    fn default() -> Self {
        SchemaGenConfig {
            domain: Domain::Publications,
            nodes: 12,
            max_depth: 4,
            max_fanout: 5,
        }
    }
}

fn random_leaf_type(rng: &mut StdRng) -> PrimitiveType {
    use PrimitiveType::*;
    *[String, Integer, Decimal, Date, Boolean, Id]
        .choose(rng)
        .expect("non-empty")
}

fn random_occurs(rng: &mut StdRng) -> Occurs {
    *[
        Occurs::ONE,
        Occurs::ONE,
        Occurs::OPTIONAL,
        Occurs::MANY,
        Occurs::ANY,
    ]
    .choose(rng)
    .expect("non-empty")
}

/// Generate a random schema with `config`'s shape, named `name`, driven by
/// `rng`. Names are drawn from the domain vocabulary with numeric
/// suffixes when the pool is exhausted, so names within one schema stay
/// unique.
pub fn generate_schema(name: &str, config: &SchemaGenConfig, rng: &mut StdRng) -> Schema {
    let vocab = Vocabulary::for_domain(config.domain);
    let mut schema = Schema::new(name);
    let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
    let fresh_name =
        |pool: &[&'static str], rng: &mut StdRng, used: &mut std::collections::HashSet<String>| {
            for _ in 0..8 {
                let cand = *pool.choose(rng).expect("non-empty pool");
                if used.insert(cand.to_owned()) {
                    return cand.to_owned();
                }
            }
            // Pool exhausted: suffix a counter.
            let mut i = 2;
            loop {
                let cand = format!("{}{}", pool.choose(rng).expect("non-empty"), i);
                if used.insert(cand.clone()) {
                    return cand;
                }
                i += 1;
            }
        };

    let root_name = fresh_name(vocab.containers(), rng, &mut used);
    let root = schema
        .add_root(Node::element(root_name))
        .expect("fresh schema");
    // Interior candidates: nodes that may still receive children.
    let mut open: Vec<NodeId> = vec![root];
    while schema.len() < config.nodes.max(1) && !open.is_empty() {
        let slot = rng.random_range(0..open.len());
        let parent = open[slot];
        let depth = schema.depth(parent);
        let want_leaf = depth + 1 >= config.max_depth || rng.random_bool(0.55);
        let mut node = if want_leaf {
            let mut n = Node::element(fresh_name(vocab.leaves(), rng, &mut used));
            n.ty = random_leaf_type(rng);
            n
        } else {
            Node::element(fresh_name(vocab.containers(), rng, &mut used))
        };
        node.occurs = random_occurs(rng);
        let id = schema.add_child(parent, node).expect("parent exists");
        if !want_leaf {
            open.push(id);
        }
        if schema.node(parent).children.len() >= config.max_fanout {
            open.retain(|&p| p != parent);
        }
    }
    debug_assert!(schema.validate().is_ok());
    schema
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_xml::SchemaStats;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn respects_node_budget_and_validates() {
        for seed in 0..20 {
            let cfg = SchemaGenConfig {
                nodes: 15,
                ..Default::default()
            };
            let s = generate_schema("test", &cfg, &mut rng(seed));
            assert!(s.validate().is_ok());
            assert!(s.len() <= 15);
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn respects_depth_and_fanout() {
        let cfg = SchemaGenConfig {
            nodes: 40,
            max_depth: 3,
            max_fanout: 4,
            ..Default::default()
        };
        for seed in 0..10 {
            let s = generate_schema("t", &cfg, &mut rng(seed));
            let stats = SchemaStats::of(&s);
            assert!(stats.max_depth <= 3, "depth {}", stats.max_depth);
            assert!(stats.max_fanout <= 4, "fanout {}", stats.max_fanout);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SchemaGenConfig::default();
        let a = generate_schema("x", &cfg, &mut rng(7));
        let b = generate_schema("x", &cfg, &mut rng(7));
        assert_eq!(a, b);
        let c = generate_schema("x", &cfg, &mut rng(8));
        assert!(!a.structural_eq(&c) || a == c); // almost surely different
    }

    #[test]
    fn names_unique_within_schema() {
        let cfg = SchemaGenConfig {
            nodes: 60,
            max_depth: 6,
            max_fanout: 6,
            ..Default::default()
        };
        let s = generate_schema("big", &cfg, &mut rng(3));
        let mut names: Vec<&str> = s.node_ids().map(|id| s.node(id).name.as_str()).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn single_node_schema() {
        let cfg = SchemaGenConfig {
            nodes: 1,
            ..Default::default()
        };
        let s = generate_schema("one", &cfg, &mut rng(1));
        assert_eq!(s.len(), 1);
    }
}

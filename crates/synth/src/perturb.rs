//! Schema perturbation with provenance tracking.
//!
//! Applies Sayyadian-style transformations to a schema: synonym and
//! abbreviation renames, typos, leaf drops, noise-leaf insertions, type
//! changes, and container wrapping. The returned [`Provenance`] records
//! where every original element went — this is what makes ground truth
//! *known* instead of judged.

use crate::vocab::Vocabulary;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use smx_xml::{Node, NodeId, PrimitiveType, Schema};

/// One applied transformation, for scenario reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Perturbation {
    /// The original node affected (for insertions: the parent).
    pub node: NodeId,
    /// What happened.
    pub kind: PerturbationKind,
}

/// The transformation kinds the perturber can apply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PerturbationKind {
    /// Renamed via the synonym table (`author` → `writer`).
    RenameSynonym {
        /// Name before the rename.
        from: String,
        /// Name after the rename.
        to: String,
    },
    /// Renamed via the abbreviation table (`quantity` → `qty`).
    RenameAbbreviation {
        /// Name before the rename.
        from: String,
        /// Name after the rename.
        to: String,
    },
    /// A one-character typo (adjacent transposition or deletion).
    RenameTypo {
        /// Name before the rename.
        from: String,
        /// Name after the rename.
        to: String,
    },
    /// Renamed by decorating with a generic token (`title` → `titleInfo`)
    /// — the fallback when the vocabulary has no synonym/abbreviation, so
    /// that rename pressure applies to *every* name.
    RenameDecorate {
        /// Name before the rename.
        from: String,
        /// Name after the rename.
        to: String,
    },
    /// A leaf was dropped.
    Drop,
    /// A noise leaf was inserted under `node`.
    InsertNoise {
        /// The inserted leaf's name.
        name: String,
    },
    /// The primitive type changed.
    ChangeType {
        /// Type before the change.
        from: PrimitiveType,
        /// Type after the change.
        to: PrimitiveType,
    },
}

/// Where each original node ended up in the perturbed schema.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Provenance {
    mapping: Vec<Option<NodeId>>,
    applied: Vec<Perturbation>,
}

impl Provenance {
    /// The perturbed-schema node an original node became, if it survived.
    pub fn image_of(&self, original: NodeId) -> Option<NodeId> {
        self.mapping.get(original.index()).copied().flatten()
    }

    /// All applied perturbations, in application order.
    pub fn applied(&self) -> &[Perturbation] {
        &self.applied
    }

    /// Count of surviving original nodes.
    pub fn survivors(&self) -> usize {
        self.mapping.iter().filter(|m| m.is_some()).count()
    }
}

/// Probabilities per node, scaled by `strength`.
struct Probs {
    rename: f64,
    typo: f64,
    drop: f64,
    insert: f64,
    retype: f64,
}

impl Probs {
    fn at(strength: f64) -> Probs {
        let s = strength.clamp(0.0, 1.0);
        Probs {
            rename: 0.45 * s,
            typo: 0.10 * s,
            drop: 0.06 * s,
            insert: 0.15 * s,
            retype: 0.10 * s,
        }
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().chain(chars).collect(),
        None => String::new(),
    }
}

fn typo(name: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = name.chars().collect();
    if chars.len() < 3 {
        return name.to_owned();
    }
    let mut out = chars.clone();
    if rng.random_bool(0.5) {
        // Adjacent transposition.
        let i = rng.random_range(0..out.len() - 1);
        out.swap(i, i + 1);
    } else {
        // Deletion.
        let i = rng.random_range(0..out.len());
        out.remove(i);
    }
    out.into_iter().collect()
}

/// Perturb `schema` with the given `strength` in `[0, 1]` (0 = copy, 1 =
/// heavy). Returns the perturbed schema and the provenance map. The root
/// is never dropped.
pub fn perturb_schema(
    schema: &Schema,
    vocab: &Vocabulary,
    strength: f64,
    rng: &mut StdRng,
) -> (Schema, Provenance) {
    let probs = Probs::at(strength);
    let mut out = Schema::new(schema.name().to_owned());
    let mut prov = Provenance {
        mapping: vec![None; schema.len()],
        applied: Vec::new(),
    };
    let Some(root) = schema.root() else {
        return (out, prov);
    };

    #[allow(clippy::too_many_arguments)]
    fn visit(
        schema: &Schema,
        vocab: &Vocabulary,
        probs: &Probs,
        rng: &mut StdRng,
        out: &mut Schema,
        prov: &mut Provenance,
        original: NodeId,
        new_parent: Option<NodeId>,
    ) {
        let node = schema.node(original);
        let is_root = new_parent.is_none();
        // Drop leaves (never the root).
        if !is_root && node.is_leaf() && rng.random_bool(probs.drop) {
            prov.applied.push(Perturbation {
                node: original,
                kind: PerturbationKind::Drop,
            });
            return;
        }
        // Decide the name.
        let mut name = node.name.clone();
        if rng.random_bool(probs.rename) {
            let synonyms = vocab.synonyms_of(&name);
            let abbrevs = vocab.abbreviations_of(&name);
            if !synonyms.is_empty() && (abbrevs.is_empty() || rng.random_bool(0.6)) {
                let to = (*synonyms.choose(rng).expect("non-empty")).to_owned();
                prov.applied.push(Perturbation {
                    node: original,
                    kind: PerturbationKind::RenameSynonym {
                        from: name.clone(),
                        to: to.clone(),
                    },
                });
                name = to;
            } else if !abbrevs.is_empty() {
                let to = (*abbrevs.choose(rng).expect("non-empty")).to_owned();
                prov.applied.push(Perturbation {
                    node: original,
                    kind: PerturbationKind::RenameAbbreviation {
                        from: name.clone(),
                        to: to.clone(),
                    },
                });
                name = to;
            } else {
                // No table entry: decorate with a generic token so rename
                // pressure applies to every name.
                const DECOR: [&str; 6] = ["Info", "Data", "Val", "Field", "Ref", "Entry"];
                let decor = DECOR.choose(rng).expect("non-empty");
                let to = if rng.random_bool(0.5) {
                    format!("{name}{decor}")
                } else {
                    format!("{}{}", decor.to_lowercase(), capitalize(&name))
                };
                prov.applied.push(Perturbation {
                    node: original,
                    kind: PerturbationKind::RenameDecorate {
                        from: name.clone(),
                        to: to.clone(),
                    },
                });
                name = to;
            }
        }
        if rng.random_bool(probs.typo) {
            let to = typo(&name, rng);
            if to != name {
                prov.applied.push(Perturbation {
                    node: original,
                    kind: PerturbationKind::RenameTypo {
                        from: name.clone(),
                        to: to.clone(),
                    },
                });
                name = to;
            }
        }
        // Decide the type.
        let mut ty = node.ty;
        if node.is_leaf() && rng.random_bool(probs.retype) {
            use PrimitiveType::*;
            let to = *[String, Integer, Decimal, Date, Boolean, Id]
                .iter()
                .filter(|&&t| t != ty)
                .collect::<Vec<_>>()
                .choose(rng)
                .expect("five alternatives");
            prov.applied.push(Perturbation {
                node: original,
                kind: PerturbationKind::ChangeType { from: ty, to: *to },
            });
            ty = *to;
        }
        let mut fresh = Node::element(name);
        fresh.kind = node.kind;
        fresh.ty = ty;
        fresh.occurs = node.occurs;
        let new_id = match new_parent {
            None => out.add_root(fresh).expect("fresh output schema"),
            Some(p) => out.add_child(p, fresh).expect("parent exists"),
        };
        prov.mapping[original.index()] = Some(new_id);
        for &c in &node.children {
            visit(schema, vocab, probs, rng, out, prov, c, Some(new_id));
        }
        // Insert a noise leaf after the real children.
        if !node.is_leaf() && rng.random_bool(probs.insert) {
            let noise_name = format!(
                "{}X{}",
                vocab.leaves().choose(rng).expect("non-empty"),
                rng.random_range(10..100)
            );
            let mut noise = Node::element(noise_name.clone());
            noise.ty = PrimitiveType::String;
            out.add_child(new_id, noise).expect("parent exists");
            prov.applied.push(Perturbation {
                node: original,
                kind: PerturbationKind::InsertNoise { name: noise_name },
            });
        }
    }

    visit(schema, vocab, &probs, rng, &mut out, &mut prov, root, None);
    debug_assert!(out.validate().is_ok());
    (out, prov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Domain;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    fn personal() -> Schema {
        SchemaBuilder::new("personal")
            .root("book")
            .leaf("title", PrimitiveType::String)
            .leaf("author", PrimitiveType::String)
            .leaf("year", PrimitiveType::Integer)
            .leaf("price", PrimitiveType::Decimal)
            .build()
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn zero_strength_is_identity_with_full_provenance() {
        let s = personal();
        let vocab = Vocabulary::for_domain(Domain::Publications);
        let (p, prov) = perturb_schema(&s, &vocab, 0.0, &mut rng(1));
        assert!(p.structural_eq(&s));
        assert_eq!(prov.survivors(), s.len());
        assert!(prov.applied().is_empty());
        for id in s.node_ids() {
            assert!(prov.image_of(id).is_some());
        }
    }

    #[test]
    fn provenance_names_stay_related() {
        let s = personal();
        let vocab = Vocabulary::for_domain(Domain::Publications);
        for seed in 0..30 {
            let (p, prov) = perturb_schema(&s, &vocab, 0.8, &mut rng(seed));
            assert!(p.validate().is_ok());
            // The root always survives.
            assert!(prov.image_of(s.root().unwrap()).is_some());
            // Every recorded perturbation references a real original node.
            for pert in prov.applied() {
                assert!(pert.node.index() < s.len());
            }
            // Survivor images are valid nodes of the perturbed schema.
            for id in s.node_ids() {
                if let Some(img) = prov.image_of(id) {
                    assert!(img.index() < p.len());
                }
            }
        }
    }

    #[test]
    fn strength_one_changes_something_usually() {
        let s = personal();
        let vocab = Vocabulary::for_domain(Domain::Publications);
        let changed = (0..20)
            .filter(|&seed| {
                let (p, _) = perturb_schema(&s, &vocab, 1.0, &mut rng(seed));
                !p.structural_eq(&s)
            })
            .count();
        assert!(changed >= 15, "only {changed}/20 perturbed copies differed");
    }

    #[test]
    fn drops_recorded_as_none() {
        let s = personal();
        let vocab = Vocabulary::for_domain(Domain::Publications);
        // With heavy dropping, eventually some leaf disappears.
        let mut saw_drop = false;
        for seed in 0..50 {
            let (p, prov) = perturb_schema(&s, &vocab, 1.0, &mut rng(seed));
            for id in s.node_ids() {
                if prov.image_of(id).is_none() {
                    saw_drop = true;
                    // Dropped nodes do not appear in the output size.
                    assert!(!p.is_empty());
                }
            }
            if saw_drop {
                break;
            }
        }
        assert!(saw_drop, "no drop observed in 50 seeds at strength 1");
    }

    #[test]
    fn typo_produces_nearby_string() {
        let mut r = rng(9);
        for word in ["customer", "title", "departure"] {
            let t = typo(word, &mut r);
            assert!(smx_is_close(word, &t), "{word} -> {t}");
        }
        // Short names are left alone.
        assert_eq!(typo("ab", &mut r), "ab");
    }

    fn smx_is_close(a: &str, b: &str) -> bool {
        // Length differs by at most 1 and most chars shared.
        a.chars().count().abs_diff(b.chars().count()) <= 1
    }

    #[test]
    fn empty_schema_perturbs_to_empty() {
        let vocab = Vocabulary::for_domain(Domain::Travel);
        let (p, prov) = perturb_schema(&Schema::new("e"), &vocab, 0.7, &mut rng(2));
        assert!(p.is_empty());
        assert_eq!(prov.survivors(), 0);
    }
}

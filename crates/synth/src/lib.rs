#![warn(missing_docs)]

//! Synthetic schema-matching scenarios with known ground truth.
//!
//! The paper's central premise is that large-scale validation lacks human
//! judgments. This crate *replaces the human* the way Sayyadian et al.'s
//! synthetic-scenario tuning does (\[14\] in the paper): a small **personal
//! schema** is generated, perturbed copies of it (renames, drops, noise
//! insertions) are embedded into larger host schemas, and everything is
//! packed into a repository. Because the generator knows which embedded
//! element each personal element became, the *correct mappings* are known
//! exactly — giving us an `H` to (a) measure S1's curve on and (b) verify
//! the bounds against.
//!
//! * [`vocab`] — domain vocabularies (publications, commerce, HR, travel)
//!   with synonym and abbreviation tables,
//! * [`generator`] — seeded random schema generation with configurable
//!   shape,
//! * [`perturb`] — name/structure perturbations with provenance tracking,
//! * [`scenario`] — end-to-end scenario assembly: personal schema,
//!   repository, and the set of correct element correspondences,
//! * [`strategies`] — reusable proptest strategies over all of the
//!   above (scenario shapes, thresholds, budgets, label noise) for the
//!   workspace's property suites.
//!
//! All randomness flows through a caller-provided [`rand::rngs::StdRng`]
//! seed, so scenarios are exactly reproducible.

pub mod generator;
pub mod perturb;
pub mod scenario;
pub mod strategies;
pub mod vocab;

pub use generator::{generate_schema, SchemaGenConfig};
pub use perturb::{perturb_schema, Perturbation, PerturbationKind, Provenance};
pub use scenario::{CorrectMapping, Scenario, ScenarioConfig};
pub use vocab::{Domain, Vocabulary};

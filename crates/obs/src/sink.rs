//! JSON-lines trace sink with per-line FNV-1a checksums, plus the
//! encoding/validation helpers the differential suites use.
//!
//! Reuses `smx-persist`'s checksummed-writer idiom: every record
//! carries a checksum over its own bytes so a reader can detect torn or
//! bit-flipped lines without trusting file length. The sink never
//! panics — an I/O error marks it unhealthy and later records are
//! dropped, mirroring the eviction sink's degradation contract.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

use crate::trace::{AttrValue, Recorder, SpanRecord};

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_BASIS, |hash, &byte| {
        (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME)
    })
}

fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Encode one span as a single JSON line (no trailing newline). The
/// object ends with an `"fnv"` field: the FNV-1a-64 checksum, in hex,
/// of every byte of the line before that field — the persist crate's
/// checksummed-record idiom, so [`trace_line_is_valid`] can verify a
/// line in isolation.
pub fn encode_span_json(span: &SpanRecord) -> String {
    let mut line = String::with_capacity(128);
    let _ = write!(
        line,
        "{{\"id\":{},\"parent\":{},\"name\":\"",
        span.id,
        span.parent
            .map_or_else(|| "null".to_owned(), |p| p.to_string()),
    );
    escape_json_into(&mut line, span.name);
    let _ = write!(
        line,
        "\",\"start_ns\":{},\"elapsed_ns\":{},\"attrs\":{{",
        span.start_ns, span.elapsed_ns
    );
    for (i, (key, value)) in span.attrs.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push('"');
        escape_json_into(&mut line, key);
        line.push_str("\":");
        match value {
            AttrValue::U64(v) => {
                let _ = write!(line, "{v}");
            }
            AttrValue::I64(v) => {
                let _ = write!(line, "{v}");
            }
            AttrValue::F64(v) if v.is_finite() => {
                let _ = write!(line, "{v}");
            }
            // JSON has no NaN/Inf literal; stringify to stay parseable.
            AttrValue::F64(v) => {
                let _ = write!(line, "\"{v}\"");
            }
            AttrValue::Bool(v) => {
                let _ = write!(line, "{v}");
            }
            AttrValue::Str(v) => {
                line.push('"');
                escape_json_into(&mut line, v);
                line.push('"');
            }
        }
    }
    line.push('}');
    let checksum = fnv1a(line.as_bytes());
    let _ = write!(line, ",\"fnv\":\"{checksum:016x}\"}}");
    line
}

/// Verify one sink line's embedded checksum: recompute FNV-1a-64 over
/// the bytes preceding the `"fnv"` field and compare. Returns `false`
/// for torn, truncated, or bit-flipped lines.
pub fn trace_line_is_valid(line: &str) -> bool {
    let line = line.trim_end_matches(['\n', '\r']);
    let Some(pos) = line.rfind(",\"fnv\":\"") else {
        return false;
    };
    let tail = &line[pos + ",\"fnv\":\"".len()..];
    let Some(hex) = tail.strip_suffix("\"}") else {
        return false;
    };
    let Ok(stored) = u64::from_str_radix(hex, 16) else {
        return false;
    };
    fnv1a(&line.as_bytes()[..pos]) == stored
}

/// A [`Recorder`] that appends one checksummed JSON line per span to a
/// file, flushing each line through so spans survive even when the sink
/// lives in a process-global that is never dropped. Installed globally
/// by `SMX_TRACE=json`. I/O errors never propagate into instrumented
/// code: the first failure marks the sink unhealthy and subsequent
/// records are silently dropped.
pub struct JsonLinesSink {
    writer: Mutex<BufWriter<File>>,
    healthy: AtomicBool,
    written: AtomicU64,
    dropped: AtomicU64,
}

impl JsonLinesSink {
    /// Create (truncating) the sink file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonLinesSink {
            writer: Mutex::new(BufWriter::new(file)),
            healthy: AtomicBool::new(true),
            written: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// Whether the sink has seen no I/O error yet.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Relaxed)
    }

    /// Lines successfully handed to the writer.
    pub fn lines_written(&self) -> u64 {
        self.written.load(Relaxed)
    }

    /// Spans dropped after the sink turned unhealthy or failed a write.
    pub fn lines_dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// Flush buffered lines to the file. Errors mark the sink
    /// unhealthy and are returned for callers that care (the recorder
    /// path ignores them).
    pub fn flush(&self) -> io::Result<()> {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        writer.flush().inspect_err(|_| {
            self.healthy.store(false, Relaxed);
        })
    }
}

impl Recorder for JsonLinesSink {
    fn record(&self, span: &SpanRecord) {
        if !self.healthy.load(Relaxed) {
            self.dropped.fetch_add(1, Relaxed);
            return;
        }
        let mut line = encode_span_json(span);
        line.push('\n');
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // Flush through per line: the `SMX_TRACE=json` path stores the
        // sink in a process-global recorder, and statics never drop, so
        // buffered-only lines would silently vanish at exit.
        let ok = writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.flush())
            .is_ok();
        if ok {
            self.written.fetch_add(1, Relaxed);
        } else {
            self.healthy.store(false, Relaxed);
            self.dropped.fetch_add(1, Relaxed);
        }
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SpanRecord {
        SpanRecord {
            id: 7,
            parent: Some(3),
            name: "store.score_rows",
            start_ns: 120,
            elapsed_ns: 4_567,
            attrs: vec![
                ("rows", AttrValue::U64(12)),
                ("restricted", AttrValue::Bool(true)),
                ("label", AttrValue::Str("a\"b\\c\n".to_owned())),
                ("cap", AttrValue::F64(0.25)),
            ],
        }
    }

    #[test]
    fn encoded_lines_carry_a_verifiable_checksum() {
        let line = encode_span_json(&sample());
        assert!(trace_line_is_valid(&line), "fresh line must verify: {line}");
        assert!(line.contains("\"name\":\"store.score_rows\""));
        assert!(line.contains("\"label\":\"a\\\"b\\\\c\\n\""));
    }

    #[test]
    fn corruption_is_detected() {
        let line = encode_span_json(&sample());
        let flipped = line.replacen("store", "stole", 1);
        assert!(!trace_line_is_valid(&flipped), "bit-flip must fail");
        let torn = &line[..line.len() - 4];
        assert!(!trace_line_is_valid(torn), "torn tail must fail");
        assert!(!trace_line_is_valid("{\"id\":1}"), "missing fnv must fail");
    }

    #[test]
    fn sink_writes_one_valid_line_per_span() {
        let path = std::env::temp_dir().join(format!("smx-obs-sink-{}.jsonl", std::process::id()));
        {
            let sink = JsonLinesSink::create(&path).expect("create sink");
            sink.record(&sample());
            sink.record(&sample());
            assert_eq!(sink.lines_written(), 2);
            assert!(sink.is_healthy());
        }
        let body = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| trace_line_is_valid(l)));
        let _ = std::fs::remove_file(&path);
    }
}

#![deny(missing_docs)]

//! `smx-obs` — structured tracing, metrics registry, and exporters for
//! the schema-matching stack. Zero external dependencies (std only,
//! stable Rust): every workspace crate hangs instrumentation off this
//! one, so it sits below even the vendor shims in the dependency graph.
//!
//! # Observability
//!
//! Three pillars, one switch:
//!
//! * **Spans** ([`span`], [`Span`], [`Recorder`]) — RAII guards that
//!   capture name, parent (per-thread nesting), wall time via
//!   `Instant`, and typed attributes, delivered to a global or
//!   thread-scoped subscriber on drop.
//! * **Metrics** ([`registry`], [`Counter`], [`Gauge`], [`Histogram`])
//!   — named monotonic counters, gauges, and fixed-bucket latency
//!   histograms, exported as a mergeable [`MetricsSnapshot`].
//! * **Exporters** — the hierarchical span-tree text renderer
//!   ([`render_span_tree`]), a JSON-lines sink with per-line FNV-1a
//!   checksums ([`JsonLinesSink`]), and [`MetricsSnapshot`]'s
//!   `Display`.
//!
//! The switch is [`enabled`]: a relaxed atomic flag initialised from
//! the `SMX_TRACE` environment variable (`0`/unset = off, `1` = on with
//! an in-memory [`TraceCollector`], `json` = on with a [`JsonLinesSink`]
//! at `$SMX_TRACE_FILE` or `smx-trace.jsonl`). Disabled, every
//! instrumentation site costs one relaxed load — the workspace's
//! `trace_overhead` bench group holds that to within 5% of the
//! uninstrumented path, and the `trace_identity` differential suite
//! proves that enabling tracing changes no matcher's answers bitwise.
//!
//! ```
//! let collector = std::sync::Arc::new(smx_obs::TraceCollector::new());
//! let _scope = smx_obs::scoped_recorder(collector.clone());
//! smx_obs::set_enabled(true);
//! {
//!     let mut outer = smx_obs::span("demo.outer");
//!     outer.attr("schemas", 1024usize);
//!     drop(smx_obs::span("demo.inner"));
//! }
//! smx_obs::set_enabled(false);
//! let tree = collector.render_tree();
//! assert!(tree.contains("demo.outer"));
//! assert!(tree.contains("  demo.inner"));
//! ```

#![warn(missing_docs)]

mod metrics;
mod sink;
mod trace;

pub use metrics::{
    registry, Counter, Gauge, Histogram, HistogramData, MetricsSnapshot, Registry,
    LATENCY_BUCKET_BOUNDS_NS,
};
pub use sink::{encode_span_json, trace_line_is_valid, JsonLinesSink};
pub use trace::{
    enabled, env_collector, format_ns, install_collector, render_span_tree, scoped_recorder,
    set_enabled, set_recorder, span, AttrValue, Recorder, ScopedRecorder, Span, SpanRecord,
    TraceCollector,
};

/// Time `body` and, when tracing is enabled, record its wall time into
/// the global histogram named `name`. Disabled cost: one relaxed load.
pub fn time_histogram<T>(name: &str, body: impl FnOnce() -> T) -> T {
    if !enabled() {
        return body();
    }
    let started = std::time::Instant::now();
    let out = body();
    registry()
        .histogram(name)
        .observe_ns(started.elapsed().as_nanos() as u64);
    out
}

#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    // The enabled flag and global recorder are process-global; unit
    // tests that flip them serialize here.
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

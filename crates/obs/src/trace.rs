//! Structured spans: the [`Recorder`] trait, the global/scoped
//! subscriber, the relaxed-atomic enabled flag, and the `SMX_TRACE`
//! environment toggle.
//!
//! The contract instrumented hot paths rely on:
//!
//! * [`enabled`] is one relaxed atomic load after the first call — the
//!   *entire* disabled-path cost of a gated instrumentation site;
//! * [`span`] returns an inert guard when tracing is disabled (no id
//!   allocation, no clock read, no thread-local touch);
//! * recording never panics and never blocks correctness: a recorder
//!   that fails (e.g. a sink hitting an I/O error) degrades to dropping
//!   records.
//!
//! Spans nest per thread: a span opened while another is live on the
//! same thread records that span as its parent. Worker threads spawned
//! inside an instrumented region start fresh stacks, so their spans
//! surface as roots — cross-thread parenting is deliberately out of
//! scope for a zero-dependency shim.

use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering::Relaxed};
use std::sync::{Arc, Mutex, Once, OnceLock, RwLock};
use std::time::Instant;

/// One attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (counts, sizes, ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (caps, recalls, ratios).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form text (stage names, policies).
    Str(String),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}

/// A completed span, as handed to a [`Recorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (monotonic, never reused).
    pub id: u64,
    /// The id of the span that was live on this thread when this one
    /// opened, if any.
    pub parent: Option<u64>,
    /// The instrumentation site's name, e.g. `"store.score_rows"`.
    pub name: &'static str,
    /// Start offset from the process trace epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall time from open to drop, in nanoseconds.
    pub elapsed_ns: u64,
    /// Attribute key/value pairs, in the order they were set.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// Receives completed spans. Implementations must be cheap and must
/// never panic — they run inside instrumented hot paths.
pub trait Recorder: Send + Sync {
    /// Record one completed span.
    fn record(&self, span: &SpanRecord);
}

/// 0 = uninitialised (consult `SMX_TRACE` on first use), 1 = disabled,
/// 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);
static ENV_INIT: Once = Once::new();
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);
static ENV_COLLECTOR: OnceLock<Arc<TraceCollector>> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Live span ids on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Thread-scoped recorder overrides, innermost last.
    static SCOPED: RefCell<Vec<Arc<dyn Recorder>>> = RefCell::new(Vec::new());
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Whether tracing is on. One relaxed atomic load on every call after
/// the first; the first call reads `SMX_TRACE` (`0`/unset = disabled,
/// `1` = enabled with an in-memory [`TraceCollector`], `json` = enabled
/// with a [`JsonLinesSink`](crate::JsonLinesSink) writing to
/// `$SMX_TRACE_FILE` or `smx-trace.jsonl`).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    ENV_INIT.call_once(|| {
        let mode = std::env::var("SMX_TRACE").unwrap_or_default();
        match mode.as_str() {
            "1" => {
                let collector = Arc::new(TraceCollector::new());
                let _ = ENV_COLLECTOR.set(Arc::clone(&collector));
                set_recorder(Some(collector as Arc<dyn Recorder>));
                STATE.store(2, Relaxed);
            }
            "json" => {
                let path = std::env::var("SMX_TRACE_FILE")
                    .unwrap_or_else(|_| "smx-trace.jsonl".to_owned());
                match crate::JsonLinesSink::create(&path) {
                    Ok(sink) => {
                        set_recorder(Some(Arc::new(sink)));
                        STATE.store(2, Relaxed);
                    }
                    // An unwritable sink must not take the host down;
                    // tracing just stays off.
                    Err(_) => STATE.store(1, Relaxed),
                }
            }
            _ => STATE.store(1, Relaxed),
        }
    });
    STATE.load(Relaxed) == 2
}

/// Programmatically force tracing on or off, overriding `SMX_TRACE`.
/// Tests, benches, and examples use this; the flag is process-global.
pub fn set_enabled(on: bool) {
    // Mark env init as done so a later `enabled()` doesn't overwrite
    // the programmatic choice with the environment's.
    ENV_INIT.call_once(|| {});
    STATE.store(if on { 2 } else { 1 }, Relaxed);
}

/// Install (or clear, with `None`) the global recorder completed spans
/// are delivered to when no scoped recorder is active on the thread.
pub fn set_recorder(recorder: Option<Arc<dyn Recorder>>) {
    *RECORDER.write().unwrap_or_else(|e| e.into_inner()) = recorder;
}

/// The [`TraceCollector`] installed by `SMX_TRACE=1`, if that is how
/// tracing was switched on — binaries render its tree at exit.
pub fn env_collector() -> Option<Arc<TraceCollector>> {
    ENV_COLLECTOR.get().cloned()
}

/// Enable tracing and install a fresh global [`TraceCollector`],
/// returning the handle. Convenience for examples and tests.
pub fn install_collector() -> Arc<TraceCollector> {
    let collector = Arc::new(TraceCollector::new());
    set_recorder(Some(Arc::clone(&collector) as Arc<dyn Recorder>));
    set_enabled(true);
    collector
}

/// Route this thread's spans to `recorder` until the guard drops —
/// the *scoped* subscriber. Scopes nest; the innermost wins. The
/// global recorder is not consulted while a scope is active.
pub fn scoped_recorder(recorder: Arc<dyn Recorder>) -> ScopedRecorder {
    SCOPED.with(|s| s.borrow_mut().push(recorder));
    ScopedRecorder {
        _not_send: PhantomData,
    }
}

/// Guard returned by [`scoped_recorder`]; pops the override on drop.
pub struct ScopedRecorder {
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopedRecorder {
    fn drop(&mut self) {
        SCOPED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

fn dispatch(record: &SpanRecord) {
    let scoped = SCOPED.with(|s| s.borrow().last().cloned());
    if let Some(recorder) = scoped {
        recorder.record(record);
        return;
    }
    let global = RECORDER
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .cloned();
    if let Some(recorder) = global {
        recorder.record(record);
    }
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start_ns: u64,
    started: Instant,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// An RAII span guard: records itself (name, parent, wall time,
/// attributes) to the active [`Recorder`] on drop. Inert — a no-op
/// shell — when tracing is disabled at open time.
///
/// Not `Send`: the parent/child relationship lives in a thread-local
/// stack, so a span must drop on the thread that opened it.
pub struct Span {
    inner: Option<ActiveSpan>,
    _not_send: PhantomData<*const ()>,
}

/// Open a span named `name`. When tracing is disabled this is one
/// relaxed atomic load and returns an inert guard.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span {
            inner: None,
            _not_send: PhantomData,
        };
    }
    let id = NEXT_ID.fetch_add(1, Relaxed);
    let parent = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    let started = Instant::now();
    Span {
        inner: Some(ActiveSpan {
            id,
            parent,
            name,
            start_ns: started.duration_since(epoch()).as_nanos() as u64,
            started,
            attrs: Vec::new(),
        }),
        _not_send: PhantomData,
    }
}

impl Span {
    /// Whether this span will record on drop. Callers computing
    /// expensive attributes (allocated strings, counter snapshots)
    /// should gate on this.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach an attribute. No-op on an inert span (the value is still
    /// evaluated by the caller — keep hot-path attrs numeric).
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(active) = &mut self.inner {
            active.attrs.push((key, value.into()));
        }
    }

    /// Nanoseconds since the span opened; 0 for an inert span.
    pub fn elapsed_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |a| a.started.elapsed().as_nanos() as u64)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // RAII guarantees LIFO per thread, but stay robust if a
            // span was leaked past its parent.
            if let Some(pos) = stack.iter().rposition(|&id| id == active.id) {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            start_ns: active.start_ns,
            elapsed_ns: active.started.elapsed().as_nanos() as u64,
            attrs: active.attrs,
        };
        dispatch(&record);
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(a) => write!(f, "Span({} #{})", a.name, a.id),
            None => write!(f, "Span(inert)"),
        }
    }
}

/// In-memory recorder: accumulates [`SpanRecord`]s and renders them as
/// a hierarchical text tree. The default sink behind `SMX_TRACE=1`.
#[derive(Default)]
pub struct TraceCollector {
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceCollector {
    /// An empty collector.
    pub fn new() -> Self {
        TraceCollector::default()
    }

    /// Number of spans collected so far.
    pub fn len(&self) -> usize {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out the collected spans (collection keeps growing).
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Drain the collected spans.
    pub fn take(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.spans.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Render everything collected so far as an indented span tree —
    /// see [`render_span_tree`].
    pub fn render_tree(&self) -> String {
        render_span_tree(&self.snapshot())
    }
}

impl Recorder for TraceCollector {
    fn record(&self, span: &SpanRecord) {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(span.clone());
    }
}

/// Format nanoseconds human-first: `412ns`, `3.4us`, `12.7ms`, `1.25s`.
pub fn format_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Render completed spans as an indented tree: children nest under
/// their parent (two spaces per level), siblings sort by start time,
/// and each line shows the span's wall time and attributes. Spans whose
/// parent is absent (cross-thread workers, drained collectors) surface
/// as roots.
pub fn render_span_tree(spans: &[SpanRecord]) -> String {
    use std::collections::HashMap;
    let index: HashMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        match span.parent.and_then(|p| index.get(&p)) {
            Some(&pi) => children[pi].push(i),
            None => roots.push(i),
        }
    }
    let by_start = |list: &mut Vec<usize>| {
        list.sort_by_key(|&i| (spans[i].start_ns, spans[i].id));
    };
    by_start(&mut roots);
    for list in &mut children {
        by_start(list);
    }
    fn render(
        out: &mut String,
        spans: &[SpanRecord],
        children: &[Vec<usize>],
        i: usize,
        depth: usize,
    ) {
        let span = &spans[i];
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(span.name);
        out.push_str("  ");
        out.push_str(&format_ns(span.elapsed_ns));
        for (key, value) in &span.attrs {
            out.push_str("  ");
            out.push_str(key);
            out.push('=');
            out.push_str(&value.to_string());
        }
        out.push('\n');
        for &child in &children[i] {
            render(out, spans, children, child, depth + 1);
        }
    }
    let mut out = String::new();
    for root in roots {
        render(&mut out, spans, &children, root, 0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_guard;

    #[test]
    fn disabled_spans_are_inert_and_enabled_spans_nest() {
        let _guard = test_guard();
        set_enabled(false);
        let inert = span("outer");
        assert!(!inert.is_active());
        assert_eq!(inert.elapsed_ns(), 0);
        drop(inert);

        let collector = Arc::new(TraceCollector::new());
        let _scope = scoped_recorder(Arc::clone(&collector) as _);
        set_enabled(true);
        {
            let mut outer = span("outer");
            outer.attr("k", 7usize);
            {
                let inner = span("inner");
                assert!(inner.is_active());
            }
        }
        set_enabled(false);
        let spans = collector.take();
        assert_eq!(spans.len(), 2, "children record before parents");
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[1].parent, None);
        assert_eq!(spans[1].attrs, vec![("k", AttrValue::U64(7))]);
    }

    #[test]
    fn tree_renderer_indents_children_under_parents() {
        let spans = vec![
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "child",
                start_ns: 10,
                elapsed_ns: 1_500,
                attrs: vec![("n", AttrValue::U64(3))],
            },
            SpanRecord {
                id: 1,
                parent: None,
                name: "root",
                start_ns: 0,
                elapsed_ns: 2_000_000,
                attrs: Vec::new(),
            },
        ];
        let tree = render_span_tree(&spans);
        assert_eq!(tree, "root  2.0ms\n  child  1.5us  n=3\n");
    }

    #[test]
    fn scoped_recorder_shadows_the_global_one() {
        let _guard = test_guard();
        let global = Arc::new(TraceCollector::new());
        let scoped = Arc::new(TraceCollector::new());
        set_recorder(Some(Arc::clone(&global) as _));
        set_enabled(true);
        {
            let _scope = scoped_recorder(Arc::clone(&scoped) as _);
            drop(span("scoped-only"));
        }
        drop(span("global-now"));
        set_enabled(false);
        set_recorder(None);
        assert_eq!(scoped.take().len(), 1);
        let seen = global.take();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].name, "global-now");
    }
}

//! Metrics registry: monotonic counters, gauges, fixed-bucket latency
//! histograms, and the mergeable [`MetricsSnapshot`] exporter.
//!
//! All instruments are lock-free after creation (relaxed atomics); the
//! registry itself takes a short mutex only when an instrument is first
//! named or a snapshot is cut. Snapshots merge associatively — counters
//! and histogram buckets add with saturation, gauges keep the maximum —
//! so per-shard or per-run reports can be folded in any grouping.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

/// Upper bounds (inclusive, nanoseconds) of the fixed latency buckets:
/// 1µs, 10µs, 100µs, 1ms, 10ms, 100ms, 1s, 10s. Observations above the
/// last bound land in an overflow bucket, so a histogram has
/// `LATENCY_BUCKET_BOUNDS_NS.len() + 1` buckets.
pub const LATENCY_BUCKET_BOUNDS_NS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// A monotonic counter. Cloning shares the underlying cell.
#[derive(Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A gauge holding the latest `f64` sample. Cloning shares the cell.
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Overwrite the gauge with `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Relaxed))
    }
}

/// A latency histogram over [`LATENCY_BUCKET_BOUNDS_NS`] plus an
/// overflow bucket, with total count and sum. Cloning shares the cells.
#[derive(Clone)]
pub struct Histogram {
    buckets: Arc<[AtomicU64]>,
    count: Arc<AtomicU64>,
    sum_ns: Arc<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..=LATENCY_BUCKET_BOUNDS_NS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: Arc::new(AtomicU64::new(0)),
            sum_ns: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Record one observation of `ns` nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        let idx = LATENCY_BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_NS.len());
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum_ns.fetch_add(ns, Relaxed);
    }

    /// Copy out the histogram's current contents.
    pub fn data(&self) -> HistogramData {
        HistogramData {
            buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            count: self.count.load(Relaxed),
            sum_ns: self.sum_ns.load(Relaxed),
        }
    }
}

/// A point-in-time copy of one histogram, suitable for merging.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramData {
    /// Per-bucket observation counts; last entry is the overflow
    /// bucket. May be shorter than the canonical layout in a snapshot
    /// that was built by hand — merges zero-pad.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, nanoseconds, saturating.
    pub sum_ns: u64,
}

impl HistogramData {
    /// Elementwise-merge `other` into `self`: buckets, count, and sum
    /// add with saturation; bucket vectors of different lengths are
    /// zero-padded to the longer one. Saturating unsigned addition is
    /// associative (every intermediate is ≤ the true sum, so clamping
    /// commutes with grouping), which keeps snapshot folds
    /// order-insensitive.
    pub fn merge(&mut self, other: &HistogramData) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Mean observation in nanoseconds, or 0.0 when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// Named instruments, created on first use and shared thereafter.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created zeroed on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_owned()).or_default().clone()
    }

    /// The gauge named `name`, created at 0.0 on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_owned()).or_default().clone()
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Cut a point-in-time [`MetricsSnapshot`] of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.data()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Drop every instrument (tests use this to isolate scenarios; the
    /// shared `Counter`/`Gauge` handles already handed out keep working
    /// but are no longer reachable from the registry).
    pub fn reset(&self) {
        self.counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry all built-in instrumentation reports to.
pub fn registry() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// A point-in-time export of a [`Registry`]: one report that call sites
/// extend with domain counters (e.g. the store's `StoreCounters` and
/// sink health published as gauges) before rendering or merging.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramData>,
}

impl MetricsSnapshot {
    /// Fold `other` into `self`. Counters and histograms add with
    /// saturation; gauges keep the maximum (`f64::max`, NaN-resistant:
    /// a NaN on either side yields the other operand). All three are
    /// associative and commutative, so folding shard snapshots in any
    /// grouping yields the same report — property-tested in
    /// `tests/metrics_properties.rs`.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*value);
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(f64::NEG_INFINITY);
            *slot = if slot.is_nan() {
                *value
            } else {
                slot.max(*value)
            };
        }
        for (name, data) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(data);
        }
    }

    /// Set gauge `name` in the snapshot itself (used to graft domain
    /// counters like `StoreCounters` into the report).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Total number of named instruments in the snapshot.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether the snapshot holds no instruments at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "metrics snapshot ({} instruments)", self.len())?;
        for (name, value) in &self.counters {
            writeln!(f, "  counter   {name} = {value}")?;
        }
        for (name, value) in &self.gauges {
            writeln!(f, "  gauge     {name} = {value}")?;
        }
        for (name, data) in &self.histograms {
            writeln!(
                f,
                "  histogram {name} count={} mean={}",
                data.count,
                crate::format_ns(data.mean_ns() as u64)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_observations_by_bound() {
        let h = Histogram::default();
        h.observe_ns(500); // ≤ 1µs → bucket 0
        h.observe_ns(1_000); // inclusive bound → bucket 0
        h.observe_ns(2_000_000); // ≤ 10ms → bucket 4
        h.observe_ns(u64::MAX); // overflow bucket
        let data = h.data();
        assert_eq!(data.count, 4);
        assert_eq!(data.buckets[0], 2);
        assert_eq!(data.buckets[4], 1);
        assert_eq!(data.buckets[LATENCY_BUCKET_BOUNDS_NS.len()], 1);
    }

    #[test]
    fn registry_returns_shared_instruments() {
        let registry = Registry::new();
        registry.counter("x").add(3);
        registry.counter("x").inc();
        assert_eq!(registry.counter("x").get(), 4);
        registry.gauge("g").set(2.5);
        assert_eq!(registry.gauge("g").get(), 2.5);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["x"], 4);
        assert_eq!(snap.gauges["g"], 2.5);
    }

    #[test]
    fn merge_pads_short_bucket_vectors() {
        let mut a = HistogramData {
            buckets: vec![1],
            count: 1,
            sum_ns: 10,
        };
        let b = HistogramData {
            buckets: vec![0, 2, 3],
            count: 5,
            sum_ns: 50,
        };
        a.merge(&b);
        assert_eq!(a.buckets, vec![1, 2, 3]);
        assert_eq!(a.count, 6);
        assert_eq!(a.sum_ns, 60);
    }
}

//! Property suite for the metrics/export layer: snapshot and histogram
//! merges must be associative (so partial aggregations from any number
//! of workers fold to the same totals regardless of grouping), merging
//! the empty snapshot must be a no-op, and every JSON trace line must
//! round-trip through its own checksum — with any single-byte
//! corruption of the payload detected.

use proptest::prelude::*;
use smx_obs::{
    encode_span_json, trace_line_is_valid, AttrValue, HistogramData, MetricsSnapshot, SpanRecord,
};

/// Small shared key pool so merges actually collide on names.
const KEYS: &[&str] = &["alpha", "beta", "gamma", "delta"];
const SPAN_NAMES: &[&str] = &["store.score_rows", "pipeline.stage", "candidates.generate"];

fn histogram() -> impl Strategy<Value = HistogramData> {
    (
        proptest::collection::vec(0..1_000_000u64, 0..10),
        0..1_000_000u64,
        0..u64::MAX / 8,
    )
        .prop_map(|(buckets, count, sum_ns)| HistogramData {
            buckets,
            count,
            sum_ns,
        })
}

fn snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    (
        proptest::collection::vec((0..KEYS.len(), 0..u64::MAX / 8), 0..5),
        proptest::collection::vec((0..KEYS.len(), -1.0e12..1.0e12f64), 0..5),
        proptest::collection::vec((0..KEYS.len(), histogram()), 0..5),
    )
        .prop_map(|(counters, gauges, histograms)| {
            let mut snap = MetricsSnapshot::default();
            for (k, v) in counters {
                snap.counters.insert(KEYS[k].to_owned(), v);
            }
            for (k, v) in gauges {
                snap.gauges.insert(KEYS[k].to_owned(), v);
            }
            for (k, v) in histograms {
                snap.histograms.insert(KEYS[k].to_owned(), v);
            }
            snap
        })
}

fn attr_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        (0..u64::MAX / 2).prop_map(AttrValue::U64),
        (-1_000_000i64..1_000_000).prop_map(AttrValue::I64),
        (-1.0e9..1.0e9f64).prop_map(AttrValue::F64),
        any::<bool>().prop_map(AttrValue::Bool),
        (0..KEYS.len()).prop_map(|k| AttrValue::Str(KEYS[k].to_owned())),
    ]
}

fn span_record() -> impl Strategy<Value = SpanRecord> {
    (
        1..u64::MAX / 2,
        proptest::option::of(1..u64::MAX / 2),
        0..SPAN_NAMES.len(),
        0..u64::MAX / 4,
        0..u64::MAX / 4,
        proptest::collection::vec((0..KEYS.len(), attr_value()), 0..5),
    )
        .prop_map(
            |(id, parent, name, start_ns, elapsed_ns, attrs)| SpanRecord {
                id,
                parent,
                name: SPAN_NAMES[name],
                start_ns,
                elapsed_ns,
                attrs: attrs.into_iter().map(|(k, v)| (KEYS[k], v)).collect(),
            },
        )
}

proptest! {
    #[test]
    fn snapshot_merge_is_associative(a in snapshot(), b in snapshot(), c in snapshot()) {
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn histogram_merge_is_associative(a in histogram(), b in histogram(), c in histogram()) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn empty_snapshot_is_the_merge_identity(a in snapshot()) {
        let mut right_identity = a.clone();
        right_identity.merge(&MetricsSnapshot::default());
        prop_assert_eq!(&right_identity, &a);

        let mut left_identity = MetricsSnapshot::default();
        left_identity.merge(&a);
        prop_assert_eq!(&left_identity, &a);
    }

    #[test]
    fn encoded_trace_lines_validate_and_reject_corruption(
        span in span_record(),
        corrupt_at in any::<proptest::sample::Index>(),
    ) {
        let line = encode_span_json(&span);
        prop_assert!(trace_line_is_valid(&line), "freshly encoded line failed: {}", line);

        // Flip one payload byte (strictly before the checksum suffix).
        // FNV-1a folds each byte through an injective state update, so a
        // single substituted byte always changes the digest and must be
        // caught. All encoder output is ASCII, so byte surgery is safe.
        let payload_end = line.rfind(",\"fnv\":\"").expect("encoder always appends a checksum");
        let idx = corrupt_at.index(payload_end);
        let mut bytes = line.clone().into_bytes();
        bytes[idx] = if bytes[idx] == b'x' { b'y' } else { b'x' };
        let corrupted = String::from_utf8(bytes).expect("ASCII in, ASCII out");
        prop_assert!(
            !trace_line_is_valid(&corrupted),
            "single-byte corruption at {} went undetected: {}",
            idx,
            corrupted
        );
    }
}

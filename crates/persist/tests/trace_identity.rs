//! The observability identity gate: turning structured tracing on must
//! never change any matcher's answers, bitwise — clean runs, runs under
//! deterministic fault storms on the spill seam, and runs that stream
//! spans through the JSON-lines sink all have to agree with an untraced
//! oracle. Instrumentation observes; it does not participate.
//!
//! Tracing state (`smx_obs::set_enabled` / `set_recorder`) is
//! process-global, so every test in this binary serializes on
//! [`TRACE_LOCK`] and restores the disabled state before returning.

use smx_eval::AnswerSet;
use smx_match::test_support::{all_matchers, canonical_answers, run_matcher};
use smx_match::{MappingRegistry, Matcher};
use smx_persist::{Fault, FaultIo, FaultPlan, RealIo, RetryPolicy, SpillFile};
use smx_repo::{Repository, StoreConfig};
use smx_synth::{Scenario, ScenarioConfig};
use smx_xml::Schema;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

const DELTA_MAX: f64 = 0.45;

/// All tests here flip the process-global tracing switches; one at a
/// time, and always back to "off" on the way out.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn reset_tracing() {
    smx_obs::set_enabled(false);
    smx_obs::set_recorder(None);
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "smx-trace-identity-{}-{tag}.bin",
        std::process::id()
    ))
}

fn scenario(seed: u64) -> Scenario {
    Scenario::generate(ScenarioConfig {
        derived_schemas: 3,
        noise_schemas: 1,
        personal_nodes: 4,
        host_nodes: 7,
        perturbation_strength: 0.6,
        seed,
        ..Default::default()
    })
}

fn run(
    matcher: &dyn Matcher,
    personal: &Schema,
    repository: &Repository,
    registry: &MappingRegistry,
) -> AnswerSet {
    run_matcher(matcher, personal, repository, DELTA_MAX, registry)
}

/// A bounded clone of `source`'s schemas with a fault-injected spill
/// sink attached (the chaos-suite fixture, reused verbatim so the
/// traced and untraced repositories see identical deterministic I/O).
fn bounded_with_faulty_spill(
    source: &Repository,
    cap: usize,
    plan: FaultPlan,
    path: &PathBuf,
) -> (Repository, Arc<SpillFile>) {
    let mut repo = Repository::with_store_config(StoreConfig {
        shards: 0,
        max_cached_rows: Some(cap),
        batch_threads: 0,
    });
    for (_, schema) in source.iter() {
        repo.add(schema.clone());
    }
    let io = Arc::new(FaultIo::new(Arc::new(RealIo), plan));
    let spill = Arc::new(
        SpillFile::create_with(io as _, path)
            .expect("creation happens before any planned fault in these tests")
            .with_retry_policy(RetryPolicy {
                max_reopens: 2,
                backoff_base: 1,
            }),
    );
    repo.store()
        .set_eviction_sink(Some(Arc::clone(&spill) as _));
    (repo, spill)
}

/// Every matching system returns bitwise-identical answers with tracing
/// off and with a span collector installed — and actually emits spans
/// while traced (the instrumentation is live, not dead code).
#[test]
fn tracing_changes_no_matchers_answers() {
    let _guard = guard();
    let sc = scenario(9101);
    for (name, matcher) in all_matchers() {
        let registry = MappingRegistry::new();
        reset_tracing();
        let untraced = run(&matcher, &sc.personal, &sc.repository, &registry);
        let collector = smx_obs::install_collector();
        let traced = run(&matcher, &sc.personal, &sc.repository, &registry);
        reset_tracing();
        assert!(
            !collector.is_empty(),
            "matcher {name} emitted no spans while tracing was enabled"
        );
        assert_eq!(
            canonical_answers(&untraced, &registry),
            canonical_answers(&traced, &registry),
            "matcher {name}: enabling tracing changed the answers"
        );
    }
}

/// Same identity under a fault storm: the traced and untraced runs each
/// get their own bounded repository wired to an *identical*
/// deterministic fault plan, so any divergence can only come from the
/// instrumentation itself.
#[test]
fn tracing_is_inert_under_fault_storms() {
    let _guard = guard();
    let sc = scenario(9102);
    type Storm = (&'static str, fn() -> FaultPlan);
    let storms: Vec<Storm> = vec![
        ("failed-write", || {
            FaultPlan::clean().fault_at(2, Fault::Fail)
        }),
        ("torn-write", || {
            FaultPlan::clean().fault_at(2, Fault::Torn { keep: 9 })
        }),
        ("flipped-bit", || {
            FaultPlan::clean().fault_at(2, Fault::BitFlip { byte: 30 })
        }),
        ("total-crash", || FaultPlan::clean().crash_at_op(2)),
        ("byte-budget", || FaultPlan::clean().crash_after_bytes(64)),
    ];
    for (storm_name, plan) in storms {
        for (matcher_name, matcher) in all_matchers() {
            let registry = MappingRegistry::new();

            reset_tracing();
            let path_off = temp_path(&format!("{storm_name}-{matcher_name}-off"));
            let (repo_off, _spill_off) =
                bounded_with_faulty_spill(&sc.repository, 1, plan(), &path_off);
            let untraced = run(&matcher, &sc.personal, &repo_off, &registry);

            let collector = smx_obs::install_collector();
            let path_on = temp_path(&format!("{storm_name}-{matcher_name}-on"));
            let (repo_on, _spill_on) =
                bounded_with_faulty_spill(&sc.repository, 1, plan(), &path_on);
            let traced = run(&matcher, &sc.personal, &repo_on, &registry);
            reset_tracing();

            assert!(
                !collector.is_empty(),
                "storm {storm_name:?}: matcher {matcher_name} emitted no spans"
            );
            assert_eq!(
                canonical_answers(&untraced, &registry),
                canonical_answers(&traced, &registry),
                "storm {storm_name:?}: matcher {matcher_name} diverged once traced"
            );
            std::fs::remove_file(&path_off).ok();
            std::fs::remove_file(&path_on).ok();
        }
    }
}

/// Streaming spans through the JSON-lines sink during a real bounded
/// run keeps the answers bitwise identical, and every line the sink
/// wrote carries a verifiable checksum.
#[test]
fn json_sink_streams_valid_lines_without_perturbing_answers() {
    let _guard = guard();
    let sc = scenario(9103);
    let registry = MappingRegistry::new();
    let (name, matcher) = all_matchers().remove(0);

    reset_tracing();
    let untraced = run(&matcher, &sc.personal, &sc.repository, &registry);

    let trace_path = temp_path("jsonl");
    let sink = Arc::new(smx_obs::JsonLinesSink::create(&trace_path).expect("temp dir is writable"));
    smx_obs::set_recorder(Some(Arc::clone(&sink) as Arc<dyn smx_obs::Recorder>));
    smx_obs::set_enabled(true);
    let traced = run(&matcher, &sc.personal, &sc.repository, &registry);
    reset_tracing();
    sink.flush().expect("sink stayed healthy");

    assert_eq!(
        canonical_answers(&untraced, &registry),
        canonical_answers(&traced, &registry),
        "matcher {name}: streaming to the JSON sink changed the answers"
    );
    let body = std::fs::read_to_string(&trace_path).expect("trace file exists");
    let lines: Vec<&str> = body.lines().collect();
    assert!(!lines.is_empty(), "sink wrote no trace lines");
    for line in &lines {
        assert!(
            smx_obs::trace_line_is_valid(line),
            "corrupt trace line: {line}"
        );
    }
    std::fs::remove_file(&trace_path).ok();
}

//! The crash matrix: simulate a crash at **every** I/O operation and at
//! every write-byte boundary during a snapshot save and a spill
//! compaction, and prove the invariant the atomic-replace protocol
//! promises — after any crash, the file on disk is either the complete
//! old image or the complete new one, never a hybrid and never
//! unreadable.
//!
//! Crashes are injected deterministically through [`FaultIo`]: a crash
//! at op `n` fails operation `n` and everything after it, exactly like
//! power loss between syscalls; `crash_after_bytes(b)` additionally
//! tears the write that crosses byte `b`, like power loss mid-write. A
//! clean instrumented run measures how many ops / bytes a save costs,
//! and the matrix iterates every boundary — no sampling, no guessing
//! which syscall matters.

use smx_persist::{FaultIo, FaultPlan, RealIo, RecoveryPolicy, Snapshot, SpillFile};
use smx_repo::Repository;
use smx_synth::{Scenario, ScenarioConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("smx-crash-{}-{tag}.bin", std::process::id()))
}

/// A small warmed repository; `seed` varies the content so the old and
/// new snapshots in the matrix are genuinely different images.
fn warmed_repo(seed: u64, queries: &[&str]) -> Repository {
    let sc = Scenario::generate(ScenarioConfig {
        derived_schemas: 2,
        noise_schemas: 1,
        personal_nodes: 3,
        host_nodes: 6,
        perturbation_strength: 0.6,
        seed,
        ..Default::default()
    });
    for q in queries {
        sc.repository.store().score_row(q);
    }
    sc.repository
}

/// Assert the snapshot at `path` strictly loads as either `old` or
/// `new`, and report which (`false` = old, `true` = new).
fn loads_as_old_or_new(path: &PathBuf, old: &Repository, new: &Repository, at: String) -> bool {
    let loaded = Repository::load_snapshot_file(path)
        .unwrap_or_else(|e| panic!("{at}: snapshot unreadable after crash: {e:?}"));
    if loaded == *old {
        false
    } else if loaded == *new {
        true
    } else {
        panic!("{at}: snapshot is neither the old nor the new image");
    }
}

#[test]
fn snapshot_save_crash_at_every_op_leaves_old_or_new() {
    let old = warmed_repo(1, &["alpha", "beta"]);
    let new = warmed_repo(2, &["gamma"]);
    let path = temp_path("save-op");

    // Clean instrumented run to measure the op budget of one save.
    old.save_snapshot_file(&path).expect("seed the old image");
    let probe = FaultIo::new(Arc::new(RealIo), FaultPlan::clean());
    new.save_snapshot_file_with(&probe, &path)
        .expect("clean instrumented save");
    let total_ops = probe.ops();
    assert!(
        total_ops >= 5,
        "create + write + sync + rename + dir sync at minimum, got {total_ops}"
    );

    let (mut saw_old, mut saw_new) = (false, false);
    for op in 0..total_ops {
        // Reset the scene: the old image is on disk, then the save of
        // the new image crashes at op `op`.
        std::fs::write(&path, old.save_snapshot()).unwrap();
        let io = FaultIo::new(Arc::new(RealIo), FaultPlan::clean().crash_at_op(op));
        new.save_snapshot_file_with(&io, &path)
            .expect_err("a crashed save must report failure");
        assert!(io.crashed(), "op {op}: the crash must have triggered");
        match loads_as_old_or_new(&path, &old, &new, format!("crash at op {op}")) {
            true => saw_new = true,
            false => saw_old = true,
        }
    }
    // The matrix must have exercised both outcomes: crashes before the
    // rename keep the old image, a crash after it (during the directory
    // sync) already published the new one.
    assert!(saw_old, "no crash point preserved the old image");
    assert!(
        saw_new,
        "no crash point published the new image (rename not covered)"
    );
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(path.with_extension("bin.tmp")).ok();
}

#[test]
fn snapshot_save_crash_at_every_byte_boundary_leaves_old() {
    let old = warmed_repo(3, &["alpha"]);
    let new = warmed_repo(4, &["beta", "gamma"]);
    let path = temp_path("save-byte");
    let image_len = new.save_snapshot().len() as u64;

    // Every byte budget 0..len tears the image write mid-stream and
    // crashes everything after; the rename never happens, so the torn
    // bytes stay in the staging file and the old image must survive
    // untouched. (Budget == len crashes at the following sync instead —
    // same outcome, covered by the op matrix above.)
    for budget in 0..image_len {
        std::fs::write(&path, old.save_snapshot()).unwrap();
        let io = FaultIo::new(
            Arc::new(RealIo),
            FaultPlan::clean().crash_after_bytes(budget),
        );
        new.save_snapshot_file_with(&io, &path)
            .expect_err("a torn save must report failure");
        let outcome = loads_as_old_or_new(&path, &old, &new, format!("torn at byte {budget}"));
        assert!(
            !outcome,
            "torn at byte {budget}: rename never ran, the old image must survive"
        );
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(path.with_extension("bin.tmp")).ok();
}

#[test]
fn salvage_reads_the_survivor_after_any_crash() {
    // The same matrix through the Salvage policy: whatever image a
    // crash leaves behind is complete, so salvage must find nothing to
    // repair (a clean report), not merely succeed.
    let old = warmed_repo(5, &["alpha"]);
    let new = warmed_repo(6, &["beta"]);
    let path = temp_path("salvage-op");
    old.save_snapshot_file(&path).unwrap();
    let probe = FaultIo::new(Arc::new(RealIo), FaultPlan::clean());
    new.save_snapshot_file_with(&probe, &path).unwrap();
    for op in 0..probe.ops() {
        std::fs::write(&path, old.save_snapshot()).unwrap();
        let io = FaultIo::new(Arc::new(RealIo), FaultPlan::clean().crash_at_op(op));
        new.save_snapshot_file_with(&io, &path).expect_err("crash");
        let (loaded, report) =
            Repository::load_snapshot_file_with(&RealIo, &path, RecoveryPolicy::Salvage)
                .unwrap_or_else(|e| panic!("crash at op {op}: salvage failed: {e:?}"));
        assert!(
            report.is_clean(),
            "crash at op {op}: a crash must not leave section damage, got {report}"
        );
        assert!(loaded == old || loaded == new);
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(path.with_extension("bin.tmp")).ok();
}

/// `(query, row values, labels fingerprint)` triples a fixture must
/// keep serving after any crash.
type LiveRows = Vec<(String, Vec<f64>, u64)>;

/// Build a spill log with superseded records worth compacting, close
/// it, and return its bytes plus the queries/rows that must survive.
fn spill_fixture(path: &PathBuf) -> (Vec<u8>, LiveRows) {
    use smx_repo::EvictionSink;
    let spill = SpillFile::create(path).unwrap();
    let live: LiveRows = vec![
        ("alpha".into(), vec![1.0, f64::NAN, -0.0], 11),
        ("beta".into(), vec![0.5, 2.0], 12),
        ("gamma".into(), vec![1.0 / 3.0], 13),
    ];
    // Superseded generations first, then the live ones.
    spill.on_evict("alpha", &[1.0], 10);
    spill.on_evict("beta", &[0.5], 10);
    for (q, row, fp) in &live {
        spill.on_evict(q, row, *fp);
    }
    drop(spill);
    (std::fs::read(path).unwrap(), live)
}

#[test]
fn spill_compaction_crash_at_every_op_serves_every_live_row() {
    use smx_repo::EvictionSink;
    let path = temp_path("compact-op");
    let (original, live) = spill_fixture(&path);

    // Measure the op budget of open + compact on a clean run.
    let probe = Arc::new(FaultIo::new(Arc::new(RealIo), FaultPlan::clean()));
    {
        let spill = SpillFile::open_with(Arc::clone(&probe) as _, &path).unwrap();
        spill.compact().expect("clean compaction");
    }
    let total_ops = probe.ops();
    let compacted_len = std::fs::metadata(&path).unwrap().len();
    assert!(compacted_len < original.len() as u64, "fixture must shrink");

    for op in 0..total_ops {
        std::fs::write(&path, &original).unwrap();
        let io = Arc::new(FaultIo::new(
            Arc::new(RealIo),
            FaultPlan::clean().crash_at_op(op),
        ));
        // The crash may land in open() (the log never opens) or in
        // compact() (which may fail, or succeed with a degraded
        // handle when only the post-rename reopen crashed). All are
        // legitimate — the invariant is about the file left on disk.
        if let Ok(spill) = SpillFile::open_with(io as _, &path) {
            let _ = spill.compact();
        }
        let len = std::fs::metadata(&path).unwrap().len();
        assert!(
            len == original.len() as u64 || len == compacted_len,
            "crash at op {op}: on-disk log is neither old nor compacted ({len} bytes)"
        );
        let reopened = SpillFile::open(&path)
            .unwrap_or_else(|e| panic!("crash at op {op}: log unreadable: {e:?}"));
        for (q, row, fp) in &live {
            let (got, got_fp) = reopened
                .recover(q)
                .unwrap_or_else(|| panic!("crash at op {op}: live row {q:?} lost"));
            assert_eq!(got_fp, *fp, "crash at op {op}");
            assert_eq!(got.len(), row.len(), "crash at op {op}");
            for (a, b) in got.iter().zip(row) {
                assert_eq!(a.to_bits(), b.to_bits(), "crash at op {op}: {q:?}");
            }
        }
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(path.with_extension("bin.tmp")).ok();
}

#[test]
fn spill_compaction_crash_at_every_byte_boundary_keeps_the_old_log() {
    use smx_repo::EvictionSink;
    let path = temp_path("compact-byte");
    let (original, live) = spill_fixture(&path);
    // Clean run to learn the compacted image size (= bytes written to
    // the staging file before the swap).
    {
        let spill = SpillFile::open(&path).unwrap();
        spill.compact().unwrap();
    }
    let compacted_len = std::fs::metadata(&path).unwrap().len();

    // The byte budget meters *writes* only, and compaction's single
    // write is the staging image — so every budget below its size tears
    // the staging file mid-write and the rename never runs.
    for tear in 0..compacted_len {
        std::fs::write(&path, &original).unwrap();
        let io = Arc::new(FaultIo::new(
            Arc::new(RealIo),
            FaultPlan::clean().crash_after_bytes(tear),
        ));
        let spill = SpillFile::open_with(io as _, &path).expect("open only reads");
        spill
            .compact()
            .expect_err("a torn staging write must fail the compaction");
        drop(spill);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            original,
            "torn at byte {tear}: the old log must survive untouched"
        );
        let reopened = SpillFile::open(&path).unwrap();
        for (q, row, fp) in &live {
            let (got, got_fp) = reopened.recover(q).expect("live row");
            assert_eq!(got_fp, *fp);
            for (a, b) in got.iter().zip(row) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(path.with_extension("bin.tmp")).ok();
}

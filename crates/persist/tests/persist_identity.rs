//! The persistence identity gate: a loaded snapshot must be
//! indistinguishable — **bitwise**, down to every answer score — from
//! the repository it was saved from, across all six matching systems;
//! and a row that was spilled to disk and faulted back must be bitwise
//! equal to its recomputed twin.

use smx_eval::AnswerSet;
use smx_match::{
    BatchMatcher, BatchProblem, BeamMatcher, BruteForceMatcher, ClusterMatcher, ExhaustiveMatcher,
    Mapping, MappingRegistry, MatchProblem, Matcher, ObjectiveFunction, ParallelExhaustiveMatcher,
    TopKMatcher,
};
use smx_persist::{Snapshot, SpillFile};
use smx_repo::{LabelId, Repository, StoreConfig};
use smx_synth::{Scenario, ScenarioConfig};
use smx_text::NameSimilarity;
use smx_xml::Schema;
use std::path::PathBuf;
use std::sync::Arc;

const DELTA_MAX: f64 = 0.45;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("smx-persist-{}-{tag}.bin", std::process::id()))
}

fn scenario(seed: u64) -> Scenario {
    Scenario::generate(ScenarioConfig {
        derived_schemas: 4,
        noise_schemas: 2,
        personal_nodes: 4,
        host_nodes: 8,
        perturbation_strength: 0.6,
        seed,
        ..Default::default()
    })
}

/// All six matching systems.
fn matchers() -> Vec<(&'static str, Box<dyn Matcher + Sync>)> {
    let objective = ObjectiveFunction::default;
    vec![
        ("exhaustive", Box::new(ExhaustiveMatcher::new(objective()))),
        (
            "parallel",
            Box::new(ParallelExhaustiveMatcher::new(objective(), 3)),
        ),
        ("brute-force", Box::new(BruteForceMatcher::new(objective()))),
        ("beam", Box::new(BeamMatcher::new(objective(), 16))),
        (
            "cluster",
            Box::new(ClusterMatcher::new(objective(), 0.55, 3)),
        ),
        ("topk", Box::new(TopKMatcher::new(objective(), 25))),
    ]
}

/// Registry-independent canonical answers with bitwise score keys.
fn canonical(answers: &AnswerSet, registry: &MappingRegistry) -> Vec<(Mapping, u64)> {
    let mut out: Vec<(Mapping, u64)> = answers
        .answers()
        .iter()
        .map(|a| (registry.resolve(a.id).expect("interned"), a.score.to_bits()))
        .collect();
    out.sort_by(|x, y| x.0.cmp(&y.0));
    out
}

fn run(
    matcher: &dyn Matcher,
    personal: &Schema,
    repository: &Repository,
    registry: &MappingRegistry,
) -> AnswerSet {
    let problem =
        MatchProblem::new(personal.clone(), repository.clone()).expect("non-empty personal schema");
    matcher.run(&problem, DELTA_MAX, registry)
}

#[test]
fn loaded_snapshot_matches_bitwise_across_all_six_matchers() {
    let sc = scenario(101);
    let repository = sc.repository;
    // Warm the store the way production traffic would.
    let warm = MatchProblem::new(sc.personal.clone(), repository.clone()).unwrap();
    warm.cost_matrix(&ObjectiveFunction::default());
    let bytes = repository.save_snapshot();
    let loaded = Repository::load_snapshot(&bytes).expect("snapshot decodes");
    assert_eq!(loaded, repository);
    for (name, matcher) in matchers() {
        let registry = MappingRegistry::new();
        let fresh = run(&matcher, &sc.personal, &repository, &registry);
        let restarted = run(&matcher, &sc.personal, &loaded, &registry);
        assert_eq!(
            canonical(&fresh, &registry),
            canonical(&restarted, &registry),
            "{name}: loaded snapshot diverged from the original repository"
        );
        for (a, b) in fresh.answers().iter().zip(restarted.answers()) {
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "{name}");
        }
    }
    // The loaded store serves the warmed rows without recomputing them.
    let replay = MatchProblem::new(sc.personal, loaded.clone()).unwrap();
    replay.cost_matrix(&ObjectiveFunction::default());
    assert_eq!(
        loaded.store().pair_evals(),
        0,
        "warm rows must survive the restart"
    );
}

#[test]
fn snapshot_file_round_trip_and_batch_equivalence() {
    let sc = scenario(202);
    let repository = sc.repository;
    let personals: Vec<Schema> = (0..4).map(|i| scenario(300 + i).personal).collect();
    // Warm through the batch path, snapshot to an actual file.
    let batch = BatchProblem::new(personals.clone(), repository.clone()).unwrap();
    batch.prefill_rows();
    let path = temp_path("file-roundtrip");
    repository
        .save_snapshot_file(&path)
        .expect("snapshot writes");
    let loaded = Repository::load_snapshot_file(&path).expect("snapshot reads");
    std::fs::remove_file(&path).ok();
    let registry = MappingRegistry::new();
    let matcher = BatchMatcher::new(ExhaustiveMatcher::default());
    let expected = matcher.run_batch(
        &BatchProblem::new(personals.clone(), repository).unwrap(),
        DELTA_MAX,
        &registry,
    );
    let got = matcher.run_batch(
        &BatchProblem::new(personals, loaded).unwrap(),
        DELTA_MAX,
        &registry,
    );
    assert_eq!(got.len(), expected.len());
    for (i, (b, s)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(
            canonical(b, &registry),
            canonical(s, &registry),
            "problem {i}"
        );
    }
}

#[test]
fn spilled_then_faulted_rows_are_bitwise_equal_to_recompute() {
    let sc = scenario(404);
    // Twin repositories: one bounded with a spill file, one untouched.
    let mut spilling = Repository::with_store_config(StoreConfig {
        shards: 0,
        max_cached_rows: Some(2),
        batch_threads: 0,
    });
    let mut oracle = Repository::new();
    for (_, schema) in sc.repository.iter() {
        spilling.add(schema.clone());
        oracle.add(schema.clone());
    }
    let path = temp_path("spill-fault");
    let spill = Arc::new(SpillFile::create(&path).expect("spill file"));
    spilling
        .store()
        .set_eviction_sink(Some(Arc::clone(&spill) as _));
    let queries: Vec<String> = (0..8).map(|i| format!("spillQuery{i}")).collect();
    for q in &queries {
        spilling.store().score_row(q);
    }
    assert!(
        spill.len() >= queries.len() - 2,
        "most rows must have spilled"
    );
    // Fault every query back (all but the 2 resident ones come from
    // disk) and compare to the unbounded twin and the scalar oracle.
    let scalar = NameSimilarity::default();
    for q in &queries {
        let evals_before = spilling.store().pair_evals();
        let faulted = spilling.store().score_row(q);
        let recomputed = oracle.store().score_row(q);
        assert_eq!(faulted.len(), recomputed.len());
        for (id, (a, b)) in faulted.iter().zip(recomputed.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{q:?} col {id}");
            let label = oracle.store().interner().resolve(LabelId(id as u32));
            assert_eq!(
                a.to_bits(),
                scalar.distance(q, label).to_bits(),
                "{q:?} vs {label:?}"
            );
        }
        assert_eq!(
            spilling.store().pair_evals(),
            evals_before,
            "{q:?}: faulting a spilled row must not evaluate pairs"
        );
    }
    let c = spilling.store().counters();
    assert!(c.row_spills > 0);
    assert!(c.row_spill_recoveries > 0);
    assert_eq!(c.row_hits + c.row_misses, c.row_lookups);
    std::fs::remove_file(&path).ok();
}

#[test]
fn spilled_rows_back_matchers_identically_under_pressure() {
    let sc = scenario(505);
    let mut bounded = Repository::with_store_config(StoreConfig {
        shards: 0,
        max_cached_rows: Some(1),
        batch_threads: 0,
    });
    for (_, schema) in sc.repository.iter() {
        bounded.add(schema.clone());
    }
    let path = temp_path("spill-match");
    let spill = Arc::new(SpillFile::create(&path).expect("spill file"));
    bounded
        .store()
        .set_eviction_sink(Some(Arc::clone(&spill) as _));
    for (name, matcher) in matchers() {
        let registry = MappingRegistry::new();
        let free = run(&matcher, &sc.personal, &sc.repository, &registry);
        let pressured = run(&matcher, &sc.personal, &bounded, &registry);
        assert_eq!(
            canonical(&free, &registry),
            canonical(&pressured, &registry),
            "{name}: spill-backed store diverged"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn spill_survives_restart_next_to_a_snapshot() {
    // The full warm-restart story: snapshot the repository, reopen the
    // spill file, and the first post-restart query of a spilled row
    // costs zero pair evaluations.
    let sc = scenario(606);
    let mut repo = Repository::with_store_config(StoreConfig {
        shards: 0,
        max_cached_rows: Some(1),
        batch_threads: 0,
    });
    for (_, schema) in sc.repository.iter() {
        repo.add(schema.clone());
    }
    let path = temp_path("spill-restart");
    {
        let spill = Arc::new(SpillFile::create(&path).expect("spill file"));
        repo.store().set_eviction_sink(Some(spill as _));
        repo.store().score_row("alpha");
        repo.store().score_row("beta"); // evicts + spills alpha
    }
    let bytes = repo.save_snapshot();
    drop(repo); // "process exit"
    let restarted = Repository::load_snapshot(&bytes).expect("snapshot decodes");
    let spill = Arc::new(SpillFile::open(&path).expect("spill reopens"));
    restarted.store().set_eviction_sink(Some(spill as _));
    let evals = restarted.store().pair_evals();
    let row = restarted.store().score_row("alpha");
    assert_eq!(
        restarted.store().pair_evals(),
        evals,
        "spilled row must fault, not sweep"
    );
    let scalar = NameSimilarity::default();
    for (id, d) in row.iter().enumerate() {
        let label = restarted.store().interner().resolve(LabelId(id as u32));
        assert_eq!(d.to_bits(), scalar.distance("alpha", label).to_bits());
    }
    std::fs::remove_file(&path).ok();
}

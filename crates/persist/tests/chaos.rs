//! The chaos gate: under *any* deterministic fault plan injected into
//! the persistence seam — failed writes, torn writes, bit flips,
//! full crashes — the system must degrade, never diverge. Every one of
//! the six matching systems must return answers **bitwise identical**
//! to a fault-free oracle run, no operation may panic, and the damage
//! must be visible through `LabelStore::health`, not silently absorbed.
//!
//! The spill sink is best-effort by contract, which is exactly what
//! makes this provable: a fault can only ever cost recompute work, and
//! recompute is bitwise-deterministic (the row-kernel identity
//! contract). The proptest drives randomized fault plans against
//! randomized query interleavings; the deterministic battery pins the
//! interesting plans (crash-at-op, torn record, flipped bit) against
//! all six matchers; the salvage storm flips bits in every snapshot
//! section and checks the Salvage policy reports the damage precisely
//! while still answering identically.

use proptest::prelude::*;
use smx_eval::AnswerSet;
use smx_match::test_support::{all_matchers, canonical_answers, run_matcher};
use smx_match::{MappingRegistry, MatchProblem, Matcher, ObjectiveFunction};
use smx_persist::{
    Fault, FaultIo, FaultPlan, RealIo, RecoveryPolicy, RetryPolicy, SalvageEvent, Snapshot,
    SpillFile,
};
use smx_repo::{Repository, StoreConfig};
use smx_synth::{Scenario, ScenarioConfig};
use smx_xml::Schema;
use std::path::PathBuf;
use std::sync::Arc;

const DELTA_MAX: f64 = 0.45;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("smx-chaos-{}-{tag}.bin", std::process::id()))
}

fn scenario(seed: u64) -> Scenario {
    Scenario::generate(ScenarioConfig {
        derived_schemas: 3,
        noise_schemas: 1,
        personal_nodes: 4,
        host_nodes: 7,
        perturbation_strength: 0.6,
        seed,
        ..Default::default()
    })
}

fn run(
    matcher: &dyn Matcher,
    personal: &Schema,
    repository: &Repository,
    registry: &MappingRegistry,
) -> AnswerSet {
    run_matcher(matcher, personal, repository, DELTA_MAX, registry)
}

/// A bounded clone of `source`'s schemas with a fault-injected spill
/// sink attached. Returns the repository and the sink.
fn bounded_with_faulty_spill(
    source: &Repository,
    cap: usize,
    plan: FaultPlan,
    path: &PathBuf,
) -> (Repository, Arc<SpillFile>) {
    let mut repo = Repository::with_store_config(StoreConfig {
        shards: 0,
        max_cached_rows: Some(cap),
        batch_threads: 0,
    });
    for (_, schema) in source.iter() {
        repo.add(schema.clone());
    }
    let io = Arc::new(FaultIo::new(Arc::new(RealIo), plan));
    let spill = Arc::new(
        SpillFile::create_with(io as _, path)
            .expect("creation happens before any planned fault in these tests")
            .with_retry_policy(RetryPolicy {
                max_reopens: 2,
                backoff_base: 1,
            }),
    );
    repo.store()
        .set_eviction_sink(Some(Arc::clone(&spill) as _));
    (repo, spill)
}

#[test]
fn six_matchers_are_bitwise_identical_under_fault_storms() {
    let sc = scenario(7001);
    // The storm battery: each plan injures the spill seam differently.
    // Ops 0 and 1 are the create + header write, so planned faults
    // start at op 2 (the first record write).
    let storms: Vec<(&str, FaultPlan)> = vec![
        ("failed-write", FaultPlan::clean().fault_at(2, Fault::Fail)),
        (
            "torn-write",
            FaultPlan::clean().fault_at(2, Fault::Torn { keep: 9 }),
        ),
        (
            "flipped-bit",
            FaultPlan::clean().fault_at(2, Fault::BitFlip { byte: 30 }),
        ),
        ("total-crash", FaultPlan::clean().crash_at_op(2)),
        ("byte-budget", FaultPlan::clean().crash_after_bytes(64)),
        (
            "rolling-failures",
            FaultPlan::clean()
                .fault_at(3, Fault::Fail)
                .fault_at(5, Fault::Torn { keep: 1 })
                .fault_at(8, Fault::BitFlip { byte: 0 })
                .fault_at(11, Fault::Fail),
        ),
    ];
    for (name, plan) in storms {
        let path = temp_path(&format!("storm-{name}"));
        let (repo, _spill) = bounded_with_faulty_spill(&sc.repository, 1, plan, &path);
        for (matcher_name, matcher) in all_matchers() {
            let registry = MappingRegistry::new();
            let oracle = run(&matcher, &sc.personal, &sc.repository, &registry);
            let stormy = run(&matcher, &sc.personal, &repo, &registry);
            assert_eq!(
                canonical_answers(&oracle, &registry),
                canonical_answers(&stormy, &registry),
                "storm {name:?}: matcher {matcher_name} diverged from the no-fault oracle"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn fault_storm_damage_is_visible_through_store_health() {
    let sc = scenario(7002);
    let path = temp_path("health");
    // Crash the sink's io permanently at the first record write: every
    // spill attempt fails, the retry budget exhausts, the sink poisons.
    let (repo, spill) =
        bounded_with_faulty_spill(&sc.repository, 1, FaultPlan::clean().crash_at_op(2), &path);
    for i in 0..32 {
        repo.store().score_row(&format!("query{i}"));
    }
    assert!(spill.is_poisoned(), "retry budget must exhaust");
    let health = repo.store().health();
    let sink = health.sink.expect("sink installed");
    assert!(sink.poisoned && sink.degraded);
    assert!(sink.write_errors > 0);
    assert!(
        health.counters.row_spill_failures > 0,
        "declined spills must be counted"
    );
    assert!(!health.is_healthy());
    // The oracle twin without a sink is pristine by the same measure.
    let clean = scenario(7002).repository;
    clean.store().score_row("query0");
    assert!(clean.store().health().is_healthy());
    std::fs::remove_file(&path).ok();
}

#[test]
fn salvage_storm_reports_each_damaged_section_and_answers_identically() {
    let sc = scenario(7003);
    let repository = sc.repository;
    // Warm the store so the snapshot has a ROWS section worth losing.
    let warm = MatchProblem::new(sc.personal.clone(), repository.clone()).unwrap();
    warm.cost_matrix(&ObjectiveFunction::default());
    let bytes = repository.save_snapshot();

    // Locate each section's payload via the on-disk table:
    // magic(8) + version(4) + count(4), then 28-byte entries
    // { id: u32, offset: u64, len: u64, checksum: u64 }.
    let table_at = smx_persist::MAGIC.len() + 8;
    let count = u32::from_le_bytes(bytes[table_at - 4..table_at].try_into().unwrap()) as usize;
    let section_at = |id: u32| -> (usize, usize) {
        for i in 0..count {
            let entry = table_at + i * 28;
            if u32::from_le_bytes(bytes[entry..entry + 4].try_into().unwrap()) == id {
                let offset =
                    u64::from_le_bytes(bytes[entry + 4..entry + 12].try_into().unwrap()) as usize;
                let len =
                    u64::from_le_bytes(bytes[entry + 12..entry + 20].try_into().unwrap()) as usize;
                return (offset, len);
            }
        }
        panic!("section {id} missing from fixture snapshot");
    };

    // Flip one payload bit per degradable section and salvage each.
    type EventMatcher = fn(&SalvageEvent) -> bool;
    let storms: [(u32, EventMatcher); 4] = [
        (smx_persist::section::LABELS, |e| {
            matches!(e, SalvageEvent::LabelsRebuilt(_))
        }),
        (smx_persist::section::TOKENS, |e| {
            matches!(e, SalvageEvent::TokensRebuilt(_))
        }),
        (smx_persist::section::ROWS, |e| {
            matches!(e, SalvageEvent::RowsDropped(_))
        }),
        (smx_persist::section::CONFIG, |e| {
            matches!(e, SalvageEvent::ConfigDefaulted(_))
        }),
    ];
    for (id, expected) in storms {
        let (offset, len) = section_at(id);
        assert!(len > 0, "section {id} must be non-empty in the fixture");
        let mut damaged = bytes.clone();
        damaged[offset + len / 2] ^= 0x40;

        // Strict refuses; Salvage loads and reports exactly one event,
        // for exactly the damaged section.
        Repository::load_snapshot(&damaged).expect_err("strict must refuse bit rot");
        let (salvaged, report) =
            Repository::load_snapshot_report(&damaged, RecoveryPolicy::Salvage)
                .unwrap_or_else(|e| panic!("section {id}: salvage failed: {e:?}"));
        assert_eq!(report.events.len(), 1, "section {id}: {report}");
        assert!(
            expected(&report.events[0]),
            "section {id}: wrong event in {report}"
        );
        assert_eq!(salvaged.store().salvage_events(), 1);
        assert!(!salvaged.store().health().is_healthy());

        // And the degraded repository still answers bitwise identically
        // across all six matchers — salvage costs recompute, never
        // correctness.
        for (name, matcher) in all_matchers() {
            let registry = MappingRegistry::new();
            let oracle = run(&matcher, &sc.personal, &repository, &registry);
            let degraded = run(&matcher, &sc.personal, &salvaged, &registry);
            assert_eq!(
                canonical_answers(&oracle, &registry),
                canonical_answers(&degraded, &registry),
                "section {id}: matcher {name} diverged after salvage"
            );
        }
    }
}

#[test]
fn mutated_sharded_store_is_bitwise_identical_under_fault_storms() {
    // The tentpole gate, composed with the chaos seam: a *sharded*,
    // bounded store whose repository has been mutated (one slot
    // removed, one replaced) rides the same fault storms — and every
    // roster matcher must still answer bitwise identically to a
    // fault-free, unsharded, unbounded rebuild of the same final
    // schemas (tombstoned slot as the empty placeholder every matcher
    // skips).
    let sc = scenario(7004);
    let replacement = scenario(7104)
        .repository
        .schema(smx_repo::SchemaId(0))
        .clone();
    let storms: Vec<(&str, FaultPlan)> = vec![
        ("failed-write", FaultPlan::clean().fault_at(2, Fault::Fail)),
        (
            "torn-write",
            FaultPlan::clean().fault_at(2, Fault::Torn { keep: 9 }),
        ),
        ("total-crash", FaultPlan::clean().crash_at_op(2)),
    ];
    for (name, plan) in storms {
        let path = temp_path(&format!("mutated-storm-{name}"));
        let io = Arc::new(FaultIo::new(Arc::new(RealIo), plan));
        let mut stormy = Repository::with_store_config(StoreConfig {
            shards: 8,
            max_cached_rows: Some(1),
            batch_threads: 0,
        });
        for (_, schema) in sc.repository.iter() {
            stormy.add(schema.clone());
        }
        let spill = Arc::new(
            SpillFile::create_with(io as _, &path)
                .expect("creation happens before any planned fault")
                .with_retry_policy(RetryPolicy {
                    max_reopens: 2,
                    backoff_base: 1,
                }),
        );
        stormy
            .store()
            .set_eviction_sink(Some(Arc::clone(&spill) as _));
        // Churn the bounded cache so evictions hit the faulty sink,
        // then mutate, then churn again: spill faults land both before
        // and after the mutation.
        for i in 0..8 {
            stormy.store().score_row(&format!("stormQuery{i}"));
        }
        assert!(stormy.remove_schema(smx_repo::SchemaId(1)));
        assert!(stormy.replace_schema(smx_repo::SchemaId(2), replacement.clone()));
        for i in 8..16 {
            stormy.store().score_row(&format!("stormQuery{i}"));
        }

        let mut oracle = Repository::new();
        for sid in stormy.schema_ids() {
            if stormy.is_removed(sid) {
                oracle.add(Schema::new(""));
            } else {
                oracle.add(stormy.schema(sid).clone());
            }
        }
        for (matcher_name, matcher) in all_matchers() {
            let registry = MappingRegistry::new();
            let want = run(&matcher, &sc.personal, &oracle, &registry);
            let got = run(&matcher, &sc.personal, &stormy, &registry);
            assert_eq!(
                canonical_answers(&want, &registry),
                canonical_answers(&got, &registry),
                "storm {name:?}: matcher {matcher_name} diverged on the mutated sharded store"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random fault plans against random query interleavings: every row
    /// served by the fault-injected, spill-backed store is bitwise
    /// equal to the no-fault oracle's, counters stay coherent, and
    /// nothing panics. Faults may land anywhere — creation, header
    /// write, record writes, reopen reads — so this also fuzzes the
    /// retry/backoff state machine.
    #[test]
    fn random_fault_plans_never_change_answers(
        seed in 0..u64::MAX,
        cap in 1..4usize,
        faults in proptest::collection::vec((0..48u64, 0..5u8, 0..64u8), 0..8),
        crash_op in proptest::option::of(2..40u64),
        queries in proptest::collection::vec(0..10usize, 1..24),
    ) {
        let mut plan = FaultPlan::clean();
        for &(op, kind, detail) in &faults {
            let fault = match kind {
                0 | 1 => Fault::Fail,
                2 | 3 => Fault::Torn { keep: detail as usize },
                _ => Fault::BitFlip { byte: detail as usize },
            };
            plan = plan.fault_at(op, fault);
        }
        if let Some(op) = crash_op {
            plan = plan.crash_at_op(op);
        }
        let sc = scenario(seed % 1024);
        let path = temp_path(&format!("prop-{seed}-{cap}"));
        // The plan may fault the very creation of the spill file; a
        // store without a sink is the degenerate (still correct) case.
        let io = Arc::new(FaultIo::new(Arc::new(RealIo), plan));
        let mut repo = Repository::with_store_config(StoreConfig {
            shards: 0,
            max_cached_rows: Some(cap),
            batch_threads: 0,
        });
        for (_, schema) in sc.repository.iter() {
            repo.add(schema.clone());
        }
        let spill = SpillFile::create_with(io as _, &path).ok().map(|s| {
            Arc::new(s.with_retry_policy(RetryPolicy { max_reopens: 1, backoff_base: 1 }))
        });
        if let Some(spill) = &spill {
            repo.store().set_eviction_sink(Some(Arc::clone(spill) as _));
        }
        let vocabulary = [
            "title", "bookTitle", "isbn", "author", "price", "orderDate",
            "customerName", "qty", "shipAddress", "year",
        ];
        for (i, &q) in queries.iter().enumerate() {
            let q = vocabulary[q];
            let stormy = repo.store().score_row(q);
            let clean = sc.repository.store().score_row(q);
            prop_assert_eq!(stormy.len(), clean.len());
            for (a, b) in stormy.iter().zip(clean.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "query {} ({:?})", i, q);
            }
            // Occasionally exercise the maintenance paths mid-storm;
            // both are allowed to fail (the io may be dead), neither
            // may panic or change answers.
            if let Some(spill) = &spill {
                if i % 7 == 3 {
                    let _ = spill.compact();
                }
                if i % 11 == 5 {
                    let _ = spill.reopen();
                }
            }
        }
        let c = repo.store().counters();
        prop_assert_eq!(c.row_hits + c.row_misses, c.row_lookups);
        // Health must be internally coherent: a poisoned sink implies
        // recorded write errors (poison is never spontaneous).
        let health = repo.store().health();
        if let Some(sink) = health.sink {
            if sink.poisoned {
                prop_assert!(sink.write_errors > 0 || sink.reopens == 0);
            }
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(path.with_extension("bin.tmp")).ok();
    }
}

//! Property tests for spill-log compaction: for *arbitrary* spill
//! histories — random queries, random row contents (including NaN and
//! signed-zero bit patterns), random supersession chains — compaction
//! must preserve every live row bitwise, strictly shrink (or keep) the
//! log, and stay crash-safe at a random injected fault point: the log
//! on disk afterwards is either the old image or the compacted one,
//! and either serves every live row.

use proptest::prelude::*;
use smx_persist::{FaultIo, FaultPlan, RealIo, SpillFile};
use smx_repo::EvictionSink;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("smx-compact-{}-{tag}.bin", std::process::id()))
}

/// The f64 vocabulary: ordinary values plus every bitwise landmine.
fn value(ix: u8) -> f64 {
    match ix % 8 {
        0 => 0.0,
        1 => -0.0,
        2 => f64::NAN,
        3 => f64::INFINITY,
        4 => f64::NEG_INFINITY,
        5 => 1.0 / 3.0,
        6 => f64::MIN_POSITIVE / 2.0, // subnormal
        _ => -271.828,
    }
}

/// Replay `history` into a fresh spill file at `path` and return the
/// expected surviving state: for each query, the newest row that the
/// sink's supersession rules actually kept (longer rows are never
/// replaced by shorter ones).
fn replay(spill: &SpillFile, history: &[(u8, Vec<u8>, u8)]) -> HashMap<String, (Vec<f64>, u64)> {
    let mut expected: HashMap<String, (Vec<f64>, u64)> = HashMap::new();
    for (q, row_ixs, fp) in history {
        let query = format!("query{}", q % 6);
        let row: Vec<f64> = row_ixs.iter().map(|&ix| value(ix)).collect();
        let fingerprint = *fp as u64;
        spill.on_evict(&query, &row, fingerprint);
        match expected.get(&query) {
            // The sink keeps a strictly longer indexed record over a
            // shorter re-spill; equal lengths supersede.
            Some((kept, _)) if kept.len() > row.len() => {}
            _ => {
                expected.insert(query, (row, fingerprint));
            }
        }
    }
    expected
}

fn assert_serves(spill: &SpillFile, expected: &HashMap<String, (Vec<f64>, u64)>, at: &str) {
    assert_eq!(spill.len(), expected.len(), "{at}: live record count");
    for (query, (row, fp)) in expected {
        let (got, got_fp) = spill
            .recover(query)
            .unwrap_or_else(|| panic!("{at}: live row {query:?} lost"));
        assert_eq!(got_fp, *fp, "{at}: {query:?} fingerprint");
        assert_eq!(got.len(), row.len(), "{at}: {query:?} length");
        for (a, b) in got.iter().zip(row) {
            assert_eq!(a.to_bits(), b.to_bits(), "{at}: {query:?} value bits");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Clean compaction: live rows bitwise preserved, dead bytes
    /// reclaimed, the compacted file reopens identically.
    #[test]
    fn compaction_preserves_live_rows_bitwise(
        tag in 0..u32::MAX,
        history in proptest::collection::vec(
            (0..6u8, proptest::collection::vec(0..=255u8, 0..6), 0..8u8),
            1..24,
        ),
    ) {
        let path = temp_path(&format!("clean-{tag}"));
        let spill = SpillFile::create(&path).expect("create");
        let expected = replay(&spill, &history);
        let before = spill.spilled_bytes();
        spill.compact().expect("clean compaction");
        prop_assert!(spill.spilled_bytes() <= before, "compaction must never grow the log");
        assert_serves(&spill, &expected, "through the live handle");
        // Compacting a compacted log is a no-op by size.
        let once = spill.spilled_bytes();
        spill.compact().expect("idempotent compaction");
        prop_assert_eq!(spill.spilled_bytes(), once);
        drop(spill);
        let reopened = SpillFile::open(&path).expect("compacted log reopens");
        assert_serves(&reopened, &expected, "after reopen");
        std::fs::remove_file(&path).ok();
    }

    /// Crash-safe compaction: a crash at a random op or byte boundary
    /// leaves a log that opens cleanly and serves every live row.
    #[test]
    fn compaction_crash_anywhere_leaves_old_or_compacted(
        tag in 0..u32::MAX,
        history in proptest::collection::vec(
            (0..6u8, proptest::collection::vec(0..=255u8, 0..6), 0..8u8),
            1..16,
        ),
        crash_op in 0..12u64,
        by_bytes in 0..2u8,
        byte_budget in 0..4096u64,
    ) {
        let path = temp_path(&format!("crash-{tag}"));
        let expected = {
            let spill = SpillFile::create(&path).expect("create");
            replay(&spill, &history)
        };
        let original = std::fs::read(&path).unwrap();
        let plan = if by_bytes == 1 {
            FaultPlan::clean().crash_after_bytes(byte_budget)
        } else {
            FaultPlan::clean().crash_at_op(crash_op)
        };
        let io = Arc::new(FaultIo::new(Arc::new(RealIo), plan));
        // The crash may hit open() itself, the staging write, the
        // rename, or the post-rename reopen; compact() may fail or
        // degrade. Either way: no panic, and the disk state below is
        // whole.
        if let Ok(spill) = SpillFile::open_with(io as _, &path) {
            let _ = spill.compact();
        }
        let disk = std::fs::read(&path).unwrap();
        let reopened = SpillFile::open(&path).expect("post-crash log must open");
        if disk == original {
            assert_serves(&reopened, &expected, "old log after crash");
        } else {
            prop_assert!(
                disk.len() <= original.len(),
                "compacted log cannot be larger than the original"
            );
            assert_serves(&reopened, &expected, "compacted log after crash");
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(path.with_extension("bin.tmp")).ok();
    }
}

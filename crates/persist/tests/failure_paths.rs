//! Persistence failure paths: every way a snapshot can be damaged maps
//! to a typed [`PersistError`] — never a panic, never a half-built
//! repository — and undamaged snapshots of arbitrary synthetic
//! repositories round-trip bitwise (proptest).

use proptest::prelude::*;
use smx_persist::{section, PersistError, Snapshot, FORMAT_VERSION, MAGIC};
use smx_repo::{LabelId, Repository, StoreConfig};
use smx_synth::{Scenario, ScenarioConfig};

fn snapshot_bytes() -> (Repository, Vec<u8>) {
    let sc = Scenario::generate(ScenarioConfig {
        derived_schemas: 3,
        noise_schemas: 1,
        personal_nodes: 4,
        host_nodes: 7,
        perturbation_strength: 0.6,
        seed: 9,
        ..Default::default()
    });
    let repository = sc.repository;
    repository.store().score_row("warmQuery");
    repository.store().score_row("anotherQuery");
    let bytes = repository.save_snapshot();
    (repository, bytes)
}

#[test]
fn bad_magic_is_rejected() {
    let (_, mut bytes) = snapshot_bytes();
    bytes[0] ^= 0xFF;
    assert!(matches!(
        Repository::load_snapshot(&bytes),
        Err(PersistError::BadMagic)
    ));
    assert!(matches!(
        Repository::load_snapshot(b"not a snapshot at all"),
        Err(PersistError::BadMagic)
    ));
}

#[test]
fn unknown_version_is_rejected_with_the_declared_version() {
    let (_, mut bytes) = snapshot_bytes();
    let at = MAGIC.len();
    bytes[at..at + 4].copy_from_slice(&(FORMAT_VERSION + 41).to_le_bytes());
    assert!(matches!(
        Repository::load_snapshot(&bytes),
        Err(PersistError::UnsupportedVersion(v)) if v == FORMAT_VERSION + 41
    ));
}

#[test]
fn truncation_anywhere_is_truncated_not_a_panic() {
    let (_, bytes) = snapshot_bytes();
    // Every prefix of the snapshot must fail cleanly. Short prefixes
    // die in the header; longer ones leave a section table pointing
    // past the end.
    for len in [
        0,
        1,
        7,
        8,
        11,
        12,
        15,
        16,
        40,
        bytes.len() / 2,
        bytes.len() - 1,
    ] {
        match Repository::load_snapshot(&bytes[..len]) {
            Err(PersistError::Truncated) => {}
            other => panic!("prefix {len}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn lying_section_count_is_truncated_not_an_allocation_panic() {
    // The header's section count is outside the checksummed payloads; a
    // flipped high bit must fail cleanly instead of sizing a huge
    // allocation by it.
    let (_, mut bytes) = snapshot_bytes();
    let at = MAGIC.len() + 4;
    bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Repository::load_snapshot(&bytes),
        Err(PersistError::Truncated)
    ));
    bytes[at..at + 4].copy_from_slice(&0x8000_0005u32.to_le_bytes());
    assert!(matches!(
        Repository::load_snapshot(&bytes),
        Err(PersistError::Truncated)
    ));
}

#[test]
fn out_of_range_token_postings_are_corrupt() {
    // A TOKENS section that checksums fine but references a schema the
    // snapshot doesn't hold: decode succeeds, validation must object
    // (the pre-filter path would otherwise index out of bounds later).
    let (_, bytes) = snapshot_bytes();
    let table_at = MAGIC.len() + 8;
    let entry = table_at + 2 * 28; // third entry: TOKENS
    let offset = u64::from_le_bytes(bytes[entry + 4..entry + 12].try_into().unwrap()) as usize;
    let len = u64::from_le_bytes(bytes[entry + 12..entry + 20].try_into().unwrap()) as usize;
    let mut damaged = bytes.clone();
    let payload = &mut damaged[offset..offset + len];
    // Walk to the first token's first posting: count, then token
    // string, then posting count, then (schema, node) pairs.
    let tokens = u32::from_le_bytes(payload[..4].try_into().unwrap());
    assert!(tokens > 0, "fixture repository must have postings");
    let token_len = u32::from_le_bytes(payload[4..8].try_into().unwrap()) as usize;
    let postings_at = 8 + token_len;
    let posting_count =
        u32::from_le_bytes(payload[postings_at..postings_at + 4].try_into().unwrap());
    assert!(posting_count > 0);
    let schema_at = postings_at + 4;
    payload[schema_at..schema_at + 4].copy_from_slice(&999u32.to_le_bytes());
    let checksum = fnv1a_local(&damaged[offset..offset + len]);
    damaged[entry + 20..entry + 28].copy_from_slice(&checksum.to_le_bytes());
    match Repository::load_snapshot(&damaged) {
        Err(PersistError::Corrupt(why)) => {
            assert!(
                why.contains("posting"),
                "unexpected corruption report: {why}"
            )
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn corrupted_payload_fails_its_section_checksum() {
    let (_, bytes) = snapshot_bytes();
    // The section table starts after magic+version+count; payloads
    // after the table. Flip one byte in every section's payload and
    // expect that section's id in the error.
    let table_at = MAGIC.len() + 8;
    for (i, &id) in section::MANDATORY.iter().enumerate() {
        let entry = table_at + i * 28;
        let offset = u64::from_le_bytes(bytes[entry + 4..entry + 12].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[entry + 12..entry + 20].try_into().unwrap());
        if len == 0 {
            continue;
        }
        let mut damaged = bytes.clone();
        damaged[offset as usize + len as usize / 2] ^= 0x5A;
        match Repository::load_snapshot(&damaged) {
            Err(PersistError::ChecksumMismatch(got)) => assert_eq!(got, id),
            other => panic!("section {id}: expected ChecksumMismatch, got {other:?}"),
        }
    }
}

#[test]
fn missing_mandatory_section_is_reported() {
    let (_, bytes) = snapshot_bytes();
    // Retag the LABELS section as an unknown id: checksum still passes,
    // but the mandatory section is gone.
    let table_at = MAGIC.len() + 8;
    let labels_entry = table_at + 28; // second entry (schemas first)
    let mut damaged = bytes.clone();
    damaged[labels_entry..labels_entry + 4].copy_from_slice(&7777u32.to_le_bytes());
    assert!(matches!(
        Repository::load_snapshot(&damaged),
        Err(PersistError::MissingSection(id)) if id == section::LABELS
    ));
}

#[test]
fn semantically_corrupt_sections_are_corrupt_errors() {
    // A snapshot whose sections all checksum but disagree with each
    // other: swap two labels so the column maps no longer resolve to
    // the schemas' node names. Easiest construction: save, decode the
    // label section offsets, swap the text of two equal-length labels.
    let (repo, bytes) = snapshot_bytes();
    let store = repo.store();
    // Find two distinct labels of equal byte length.
    let labels: Vec<String> = (0..store.len())
        .map(|i| store.interner().resolve(LabelId(i as u32)).to_owned())
        .collect();
    let mut pair = None;
    'outer: for i in 0..labels.len() {
        for j in i + 1..labels.len() {
            if labels[i].len() == labels[j].len() && labels[i] != labels[j] {
                pair = Some((labels[i].clone(), labels[j].clone()));
                break 'outer;
            }
        }
    }
    let Some((a, b)) = pair else {
        // Synthetic vocabularies always collide in length in practice;
        // if not, the construction is impossible and the test is moot.
        return;
    };
    // Swap the two labels' bytes inside the LABELS payload and re-stamp
    // that section's checksum so only semantic validation can object.
    let table_at = MAGIC.len() + 8;
    let entry = table_at + 28;
    let offset = u64::from_le_bytes(bytes[entry + 4..entry + 12].try_into().unwrap()) as usize;
    let len = u64::from_le_bytes(bytes[entry + 12..entry + 20].try_into().unwrap()) as usize;
    let mut damaged = bytes.clone();
    let payload = &mut damaged[offset..offset + len];
    // Walk the section structure (count, then length-prefixed strings)
    // to find each label's exact byte position — no substring guessing.
    let count = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
    let mut at = 4usize;
    let mut pos_of = std::collections::HashMap::new();
    for _ in 0..count {
        let slen = u32::from_le_bytes(payload[at..at + 4].try_into().unwrap()) as usize;
        let text = String::from_utf8(payload[at + 4..at + 4 + slen].to_vec()).unwrap();
        pos_of.insert(text, at + 4);
        at += 4 + slen;
    }
    let (a_at, b_at) = (pos_of[&a], pos_of[&b]);
    for k in 0..a.len() {
        payload.swap(a_at + k, b_at + k);
    }
    let checksum = fnv1a_local(&damaged[offset..offset + len]);
    damaged[entry + 20..entry + 28].copy_from_slice(&checksum.to_le_bytes());
    match Repository::load_snapshot(&damaged) {
        Err(PersistError::Corrupt(why)) => {
            assert!(
                why.contains("labelled"),
                "unexpected corruption report: {why}"
            )
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

/// FNV-1a 64, mirrored from the crate's wire module (not public API —
/// the test recomputes it independently on purpose).
fn fnv1a_local(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

proptest! {
    /// Round-trip on arbitrary synthetic repositories with arbitrary
    /// warm vocabularies and cache bounds: load(save(repo)) preserves
    /// schemas, labels, column maps, token index, config, and every
    /// cached row bitwise.
    #[test]
    fn random_repositories_round_trip_bitwise(
        derived in 1..4usize,
        noise in 0..3usize,
        host_nodes in 4..9usize,
        seed in 0..u64::MAX,
        queries in proptest::collection::vec(0..12usize, 0..6),
        cap in proptest::option::of(1..8usize),
    ) {
        let sc = Scenario::generate(ScenarioConfig {
            derived_schemas: derived,
            noise_schemas: noise,
            personal_nodes: 4,
            host_nodes,
            perturbation_strength: 0.7,
            seed,
            ..Default::default()
        });
        let mut repo = Repository::with_store_config(StoreConfig {
            shards: 0,
            max_cached_rows: cap,
            batch_threads: 0,
        });
        for (_, schema) in sc.repository.iter() {
            repo.add(schema.clone());
        }
        let vocabulary = [
            "title", "bookTitle", "isbn", "author", "price", "orderDate",
            "customerName", "qty", "shipAddress", "year", "publisher", "edition",
        ];
        for &q in &queries {
            repo.store().score_row(vocabulary[q]);
        }
        let loaded = Repository::load_snapshot(&repo.save_snapshot()).expect("round trip");
        prop_assert_eq!(&loaded, &repo);
        let (a, b) = (repo.store(), loaded.store());
        prop_assert_eq!(a.len(), b.len());
        prop_assert_eq!(a.cached_rows(), b.cached_rows());
        prop_assert_eq!(a.config(), b.config());
        for id in 0..a.len() {
            let id = LabelId(id as u32);
            prop_assert_eq!(a.interner().resolve(id), b.interner().resolve(id));
        }
        for sid in repo.schema_ids() {
            prop_assert_eq!(a.schema_labels(sid), b.schema_labels(sid));
        }
        prop_assert_eq!(
            a.token_index().postings().collect::<Vec<_>>(),
            b.token_index().postings().collect::<Vec<_>>()
        );
        // Every cached row is restored bitwise and serves without pair
        // evaluations.
        for &q in &queries {
            let q = vocabulary[q];
            if a.has_cached_row(q) {
                prop_assert!(b.has_cached_row(q));
                let (x, y) = (a.score_row(q), b.score_row(q));
                prop_assert_eq!(x.len(), y.len());
                for (p, r) in x.iter().zip(y.iter()) {
                    prop_assert_eq!(p.to_bits(), r.to_bits());
                }
            }
        }
        prop_assert_eq!(b.pair_evals(), 0);
    }
}

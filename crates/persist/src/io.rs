//! The persistence I/O seam: every byte this crate moves to or from
//! disk goes through [`PersistIo`] / [`PersistFile`], so the whole
//! stack — snapshot saves, spill appends, compaction swaps — can run
//! against the real filesystem ([`RealIo`]) or against the
//! deterministic fault injector ([`FaultIo`](crate::FaultIo)) without
//! either side knowing the difference.
//!
//! The surface is deliberately small and offset-addressed:
//! [`PersistFile::write_all_at`] / [`PersistFile::read_exact_at`] take
//! absolute positions instead of maintaining seek state, so a failed
//! operation cannot leave a hidden cursor pointing somewhere a later
//! operation silently trusts. The directory-durability half of an
//! atomic rename ([`PersistIo::sync_parent_dir`]) lives here too, so
//! crash-consistency policy is expressed once, in
//! [`atomic_write_file`], and every caller inherits it.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// One open file behind the persistence I/O seam.
///
/// All positioned operations use absolute offsets; implementations may
/// keep an internal cursor but callers never depend on it.
pub trait PersistFile: Send {
    /// Write every byte of `buf` at absolute offset `offset`, extending
    /// the file if needed. Partial progress before an error is allowed
    /// (that is exactly the torn write the crash tests simulate).
    fn write_all_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()>;

    /// Read exactly `buf.len()` bytes at absolute offset `offset`.
    fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Append the file's entire contents (from offset 0) to `buf`,
    /// returning the byte count read.
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize>;

    /// Truncate (or extend with zeros) to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;

    /// Flush file data and metadata to stable storage (fsync).
    fn sync(&mut self) -> io::Result<()>;
}

/// A filesystem the persistence layer can run against: the real one
/// ([`RealIo`]) or a fault-injecting wrapper
/// ([`FaultIo`](crate::FaultIo)).
pub trait PersistIo: Send + Sync {
    /// Create `path` for read/write, truncating anything already there.
    fn create(&self, path: &Path) -> io::Result<Box<dyn PersistFile>>;

    /// Open an existing `path` for read/write.
    fn open(&self, path: &Path) -> io::Result<Box<dyn PersistFile>>;

    /// Read the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut file = self.open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    /// Atomically replace `to` with `from` (POSIX rename semantics: `to`
    /// is either its old content or `from`'s, never a mixture).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Delete `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Fsync the directory containing `path`, making a preceding rename
    /// durable. Platforms (or fakes) where directories cannot be synced
    /// may make this a no-op; the rename itself is still atomic.
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem implementation of [`PersistIo`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

/// [`PersistFile`] over a [`std::fs::File`].
struct RealFile {
    file: File,
}

impl PersistFile for RealFile {
    fn write_all_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(buf)
    }

    fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)
    }

    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        self.file.seek(SeekFrom::Start(0))?;
        self.file.read_to_end(buf)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }
}

impl PersistIo for RealIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn PersistFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(RealFile { file }))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn PersistFile>> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Box::new(RealFile { file }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) else {
            return Ok(());
        };
        // Windows cannot open directories as Files; a failed open is a
        // durability downgrade, not a correctness failure — the rename
        // already happened atomically.
        match File::open(parent) {
            Ok(dir) => dir.sync_all(),
            Err(_) => Ok(()),
        }
    }
}

/// The sibling temp path an [`atomic_write_file`] stages into before the
/// rename: `<path>.tmp`, in the same directory so the rename never
/// crosses a filesystem. The name is fixed (no pid), so a temp file
/// orphaned by a crash is simply truncated and reused by the next save.
pub(crate) fn staging_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Crash-safe whole-file replace: write `bytes` to a same-directory temp
/// file, fsync it, rename it over `path`, fsync the directory.
///
/// A crash (or injected fault) at *any* point leaves `path` either
/// untouched (its previous content, if any) or fully replaced — never a
/// prefix of `bytes`. On failure the temp file is best-effort removed;
/// one orphaned by a genuine crash is overwritten by the next attempt.
pub(crate) fn atomic_write_file(io: &dyn PersistIo, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let staging = staging_path(path);
    let result = (|| {
        let mut file = io.create(&staging)?;
        file.write_all_at(0, bytes)?;
        file.sync()?;
        drop(file);
        io.rename(&staging, path)?;
        io.sync_parent_dir(path)
    })();
    if result.is_err() {
        // Post-fault cleanup may itself fail (a simulated crash fails
        // every later op); the stale temp is harmless either way.
        io.remove_file(&staging).ok();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("smx-io-{}-{tag}.bin", std::process::id()))
    }

    #[test]
    fn real_file_round_trips_positioned_io() {
        let path = temp_path("roundtrip");
        let mut f = RealIo.create(&path).unwrap();
        f.write_all_at(0, b"hello world").unwrap();
        f.write_all_at(6, b"rusty").unwrap();
        let mut buf = [0u8; 5];
        f.read_exact_at(6, &mut buf).unwrap();
        assert_eq!(&buf, b"rusty");
        let mut all = Vec::new();
        f.read_to_end(&mut all).unwrap();
        assert_eq!(all, b"hello rusty");
        f.set_len(5).unwrap();
        let mut all = Vec::new();
        f.read_to_end(&mut all).unwrap();
        assert_eq!(all, b"hello");
        f.sync().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_write_replaces_and_cleans_staging() {
        let path = temp_path("atomic");
        std::fs::write(&path, b"old").unwrap();
        atomic_write_file(&RealIo, &path, b"new content").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new content");
        assert!(
            !staging_path(&path).exists(),
            "staging file must be renamed away"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn staging_path_is_a_sibling() {
        let p = Path::new("/some/dir/snap.bin");
        assert_eq!(staging_path(p), Path::new("/some/dir/snap.bin.tmp"));
    }

    #[test]
    fn open_missing_file_errors() {
        assert!(RealIo.open(Path::new("/definitely/not/there")).is_err());
        assert!(RealIo.read(Path::new("/definitely/not/there")).is_err());
    }
}

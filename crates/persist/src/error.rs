//! The persistence error taxonomy.
//!
//! Every failure mode a snapshot or spill file can hit maps to one
//! typed variant — the failure-path tests assert the mapping (truncated
//! file → [`PersistError::Truncated`], flipped payload byte →
//! [`PersistError::ChecksumMismatch`], …) and that no variant ever
//! surfaces as a panic or a half-built repository.

use std::fmt;

/// Why a snapshot or spill operation failed.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic — it is not a
    /// snapshot at all (or not one of ours).
    BadMagic,
    /// The snapshot declares a format version this reader does not
    /// implement. Holds the declared version.
    UnsupportedVersion(u32),
    /// The data ends before a declared structure does — a partial
    /// write, a cut-off download, or a lying section table.
    Truncated,
    /// A section's payload does not hash to the checksum recorded in
    /// the section table. Holds the section id.
    ChecksumMismatch(u32),
    /// A mandatory section is absent from the section table. Holds the
    /// missing section id.
    MissingSection(u32),
    /// The bytes decoded, but describe an internally inconsistent
    /// repository (dangling label ids, column maps that don't match
    /// their schemas, …).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a snapshot: bad magic"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            PersistError::Truncated => write!(f, "snapshot truncated"),
            PersistError::ChecksumMismatch(id) => {
                write!(f, "checksum mismatch in section {id}")
            }
            PersistError::MissingSection(id) => {
                write!(f, "mandatory section {id} missing")
            }
            PersistError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        assert!(PersistError::UnsupportedVersion(9)
            .to_string()
            .contains('9'));
        assert!(PersistError::Truncated.to_string().contains("truncated"));
        assert!(PersistError::ChecksumMismatch(4)
            .to_string()
            .contains("section 4"));
        assert!(PersistError::MissingSection(2)
            .to_string()
            .contains("section 2"));
        assert!(PersistError::Corrupt("x".into()).to_string().contains('x'));
        let io: PersistError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
        assert!(std::error::Error::source(&io).is_some());
        assert!(std::error::Error::source(&PersistError::BadMagic).is_none());
    }
}

#![warn(missing_docs)]

//! Snapshot + spill persistence for the repository score store — warm
//! restarts for a long-lived matching service.
//!
//! Everything `smx-repo` derives at ingest (label profiles, token
//! postings) and at query time (cached score rows) is recomputable, but
//! recomputing it on every process restart throws away exactly the work
//! the paper's non-exhaustive serving story depends on amortising. This
//! crate makes that state durable in two complementary ways:
//!
//! * **Snapshots** ([`Snapshot`]): `Repository::save_snapshot` writes
//!   the schemas plus the label store's hot state to a versioned,
//!   checksummed binary image; `Repository::load_snapshot` reassembles
//!   a repository that produces **bitwise-identical** match results —
//!   the differential gate in `tests/persist_identity.rs`.
//! * **Spill** ([`SpillFile`]): an [`EvictionSink`](smx_repo::EvictionSink)
//!   that appends rows evicted by the store's LRU bound to an
//!   append-only file, so a bounded cache trades memory for disk
//!   instead of recompute. Misses fault spilled rows back in through
//!   the existing `score_rows` path, bitwise equal to their recomputed
//!   twins.
//!
//! # On-disk snapshot format
//!
//! All integers are little-endian; `f64`s travel as their IEEE-754 bit
//! patterns (`to_bits`/`from_bits`), which is what makes round-trips
//! bitwise. A snapshot is:
//!
//! ```text
//! magic   8  b"SMXPSNAP"
//! version u32  format version (currently 1)
//! count   u32  number of sections
//! table   count × { id: u32, offset: u64, len: u64, checksum: u64 }
//! ...section payloads at their table offsets...
//! ```
//!
//! Section checksums are FNV-1a 64 over the raw payload bytes and are
//! verified before any payload is decoded. Version-1 sections:
//!
//! | id | section  | contents |
//! |----|----------|----------|
//! | 1  | schemas  | every repository schema: name, arena nodes (name, kind, type, occurs, parent) |
//! | 2  | labels   | distinct labels in `LabelId` order + per-schema label-id column maps |
//! | 3  | tokens   | the token inverted index as `(token, postings)` pairs |
//! | 4  | rows     | cached score rows `(query, f64 bits…)`, least recently used first |
//! | 5  | config   | `StoreConfig`: cache bound + sweep worker count |
//! | 6  | filters  | candidate-generation filter lanes (`FilterProfileData` per label, id order) — **optional/additive**: absent in pre-filter snapshots, rebuilt from labels |
//!
//! Label *profiles* are not stored: `LabelProfile::new` is a pure
//! function of the label text (the row-kernel identity contract), so the
//! loader rebuilds them — cheaper than decoding prepared Myers tables
//! and bitwise-equivalent by construction. Filter *lanes* (section 6)
//! are equally a pure function of the label text, but they *are*
//! stored: skipping the per-label re-derivation keeps warm restarts on
//! their load-vs-rebuild budget, and a missing or damaged FILTERS
//! section degrades to exactly that rebuild.
//!
//! # Versioning and compatibility policy
//!
//! * The magic never changes; a mismatch is [`PersistError::BadMagic`]
//!   (not a snapshot at all).
//! * `version` is bumped on any *incompatible* layout change; readers
//!   reject versions they don't know
//!   ([`PersistError::UnsupportedVersion`]) rather than guess.
//! * Within a version, writers may append **new section ids**; readers
//!   skip unknown ids, so adding a section is forward- and
//!   backward-compatible. Removing or re-encoding a section requires a
//!   version bump. Sections 1–5 are mandatory
//!   ([`PersistError::MissingSection`]); FILTERS (6) is additive — a
//!   strict load accepts its absence (older writers) and rebuilds the
//!   lanes from the label list, but rejects a *present* damaged one.
//! * Decoding is all-or-nothing: any error leaves no partially built
//!   repository behind.
//!
//! This format is also the designated switch point for the ROADMAP's
//! "real serde" item: when the vendored serde shims are replaced by the
//! real crates, the section payloads can become serde-encoded while the
//! header, table, checksums, and error taxonomy stay as they are.
//!
//! # Crash consistency
//!
//! Every file this crate replaces is replaced **atomically**:
//! `save_snapshot_file` and `SpillFile::compact` write the complete new
//! image to a sibling staging file (`<name>.tmp`), fsync it, rename it
//! over the target, and fsync the parent directory. A crash at any
//! point — between any two syscalls or mid-write — therefore leaves
//! either the complete old file or the complete new one, never a
//! hybrid and never an unreadable file. The spill log itself is
//! append-only with per-record checksums, so a crash mid-append costs
//! exactly the torn tail record, which `SpillFile::open` detects and
//! truncates.
//!
//! This is not an aspiration but a tested matrix: all file I/O flows
//! through the [`PersistIo`] seam, and [`FaultIo`] injects a
//! **deterministic** fault plan into it — fail op *n*, tear a write
//! after *k* bytes, flip a bit, or crash outright (every op from *n*
//! on fails, exactly like power loss). Op indices are global and
//! assigned in call order, with no clocks or randomness anywhere, so
//! every failure a test finds replays bit-for-bit.
//! `tests/crash_matrix.rs` iterates a crash at *every* op and *every*
//! write-byte boundary of a snapshot save and a spill compaction;
//! `tests/chaos.rs` drives randomized fault plans and proves no plan
//! can change any matcher's answers.
//!
//! # Graceful degradation
//!
//! Everything persisted here is a cache of recomputable state, and the
//! failure policy follows from that:
//!
//! * **Snapshots** default to [`RecoveryPolicy::Strict`] — any damage
//!   is a typed [`PersistError`]. Under
//!   [`RecoveryPolicy::Salvage`], damage to a *derived* section
//!   degrades instead of failing: labels and token postings are
//!   rebuilt by replaying the (intact) schemas, cached rows are
//!   dropped to a cold store, config falls back to defaults — each
//!   recorded as a [`SalvageEvent`] in the returned
//!   [`SnapshotReport`] and stamped on the store's health. Only the
//!   SCHEMAS section is load-bearing: it is the one source of truth
//!   the rest can be rebuilt from, so its damage (or a damaged
//!   header) still fails under either policy.
//! * **Spill writes** are best-effort: a write error degrades the sink
//!   (declines spills through a deterministic op-count backoff, then
//!   re-opens and retries; see [`RetryPolicy`]) rather than poisoning
//!   it on first contact, and poison itself — after the retry budget
//!   exhausts — only ever costs recompute, never answers.
//!
//! Degradation is never silent: `LabelStore::health` in `smx-repo`
//! surfaces sink poison/degradation, write errors, reopen cycles, and
//! salvage events to the serving layer.

mod error;
mod fault;
mod io;
mod snapshot;
mod spill;
mod wire;

pub use error::PersistError;
pub use fault::{Fault, FaultIo, FaultPlan};
pub use io::{PersistFile, PersistIo, RealIo};
pub use snapshot::{
    section, Damage, RecoveryPolicy, SalvageEvent, Snapshot, SnapshotReport, FORMAT_VERSION, MAGIC,
};
pub use spill::{RetryPolicy, SpillFile};

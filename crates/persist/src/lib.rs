#![warn(missing_docs)]

//! Snapshot + spill persistence for the repository score store — warm
//! restarts for a long-lived matching service.
//!
//! Everything `smx-repo` derives at ingest (label profiles, token
//! postings) and at query time (cached score rows) is recomputable, but
//! recomputing it on every process restart throws away exactly the work
//! the paper's non-exhaustive serving story depends on amortising. This
//! crate makes that state durable in two complementary ways:
//!
//! * **Snapshots** ([`Snapshot`]): `Repository::save_snapshot` writes
//!   the schemas plus the label store's hot state to a versioned,
//!   checksummed binary image; `Repository::load_snapshot` reassembles
//!   a repository that produces **bitwise-identical** match results —
//!   the differential gate in `tests/persist_identity.rs`.
//! * **Spill** ([`SpillFile`]): an [`EvictionSink`](smx_repo::EvictionSink)
//!   that appends rows evicted by the store's LRU bound to an
//!   append-only file, so a bounded cache trades memory for disk
//!   instead of recompute. Misses fault spilled rows back in through
//!   the existing `score_rows` path, bitwise equal to their recomputed
//!   twins.
//!
//! # On-disk snapshot format
//!
//! All integers are little-endian; `f64`s travel as their IEEE-754 bit
//! patterns (`to_bits`/`from_bits`), which is what makes round-trips
//! bitwise. A snapshot is:
//!
//! ```text
//! magic   8  b"SMXPSNAP"
//! version u32  format version (currently 1)
//! count   u32  number of sections
//! table   count × { id: u32, offset: u64, len: u64, checksum: u64 }
//! ...section payloads at their table offsets...
//! ```
//!
//! Section checksums are FNV-1a 64 over the raw payload bytes and are
//! verified before any payload is decoded. Version-1 sections:
//!
//! | id | section  | contents |
//! |----|----------|----------|
//! | 1  | schemas  | every repository schema: name, arena nodes (name, kind, type, occurs, parent) |
//! | 2  | labels   | distinct labels in `LabelId` order + per-schema label-id column maps |
//! | 3  | tokens   | the token inverted index as `(token, postings)` pairs |
//! | 4  | rows     | cached score rows `(query, f64 bits…)`, least recently used first |
//! | 5  | config   | `StoreConfig`: cache bound + sweep worker count |
//!
//! Label *profiles* are not stored: `LabelProfile::new` is a pure
//! function of the label text (the row-kernel identity contract), so the
//! loader rebuilds them — cheaper than decoding prepared Myers tables
//! and bitwise-equivalent by construction.
//!
//! # Versioning and compatibility policy
//!
//! * The magic never changes; a mismatch is [`PersistError::BadMagic`]
//!   (not a snapshot at all).
//! * `version` is bumped on any *incompatible* layout change; readers
//!   reject versions they don't know
//!   ([`PersistError::UnsupportedVersion`]) rather than guess.
//! * Within a version, writers may append **new section ids**; readers
//!   skip unknown ids, so adding a section is forward- and
//!   backward-compatible. Removing or re-encoding a section requires a
//!   version bump. Every version-1 section above is mandatory
//!   ([`PersistError::MissingSection`]).
//! * Decoding is all-or-nothing: any error leaves no partially built
//!   repository behind.
//!
//! This format is also the designated switch point for the ROADMAP's
//! "real serde" item: when the vendored serde shims are replaced by the
//! real crates, the section payloads can become serde-encoded while the
//! header, table, checksums, and error taxonomy stay as they are.

mod error;
mod snapshot;
mod spill;
mod wire;

pub use error::PersistError;
pub use snapshot::{section, Snapshot, FORMAT_VERSION, MAGIC};
pub use spill::SpillFile;

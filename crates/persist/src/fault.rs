//! Deterministic fault injection behind the [`PersistIo`] seam.
//!
//! A [`FaultPlan`] describes, *before the run*, exactly which I/O
//! operations misbehave and how: hard failure, torn (short) write,
//! fsync failure, read error, or a bit flip in the bytes actually
//! written. Operations are identified by a global zero-based **op
//! index** — every [`PersistFile`] method call and every
//! [`PersistIo`]-level operation (create/open/rename/remove/dir-sync)
//! increments the counter exactly once, in call order, so a plan keyed
//! off a clean run's [`FaultIo::ops`] count replays byte-for-byte.
//!
//! Two crash modes simulate process death rather than a single flaky
//! op: [`FaultPlan::crash_at_op`] fails op `n` and **every operation
//! after it**, and [`FaultPlan::crash_after_bytes`] lets writes land
//! until the global written-byte budget is exhausted, tears the write
//! in progress at the boundary, then fails everything else. Together
//! they let a test iterate every op index / byte boundary of a clean
//! run and assert the recovery invariant at each one.
//!
//! The injector is purely deterministic: no clocks, no randomness —
//! the same plan over the same call sequence produces the same bytes
//! on disk every time.

use crate::io::{PersistFile, PersistIo};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// What a planned fault does to the operation at its op index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The operation fails with an I/O error; writes land zero bytes.
    Fail,
    /// A write persists only its first `keep` bytes, then errors.
    /// Non-write operations treat this as [`Fault::Fail`].
    Torn {
        /// Number of leading bytes that reach the file.
        keep: usize,
    },
    /// A write lands in full but with bit 0 of its `byte`-th buffer
    /// byte (modulo the buffer length) inverted, and reports success —
    /// silent corruption. Non-write operations treat this as
    /// [`Fault::Fail`].
    BitFlip {
        /// Index into the written buffer to corrupt.
        byte: usize,
    },
}

/// A deterministic schedule of I/O faults, keyed by global op index.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: HashMap<u64, Fault>,
    crash_at_op: Option<u64>,
    crash_after_bytes: Option<u64>,
}

impl FaultPlan {
    /// A plan with no faults: [`FaultIo`] behaves exactly like its
    /// inner I/O but still counts ops and bytes — use this to measure
    /// a clean run before iterating its boundaries.
    pub fn clean() -> Self {
        Self::default()
    }

    /// Inject `fault` at the operation with global index `op`.
    pub fn fault_at(mut self, op: u64, fault: Fault) -> Self {
        self.faults.insert(op, fault);
        self
    }

    /// Simulate process death at operation `op`: that operation and
    /// every later one fail.
    pub fn crash_at_op(mut self, op: u64) -> Self {
        self.crash_at_op = Some(op);
        self
    }

    /// Simulate process death after `budget` bytes have been written:
    /// the write that crosses the budget is torn at the boundary, and
    /// every operation after it fails.
    pub fn crash_after_bytes(mut self, budget: u64) -> Self {
        self.crash_after_bytes = Some(budget);
        self
    }
}

/// Mutable injector state shared by a [`FaultIo`] and every file it
/// has opened (they must share one op counter).
#[derive(Debug, Default)]
struct FaultState {
    ops: u64,
    bytes_written: u64,
    crashed: bool,
    faults_fired: u64,
}

impl FaultState {
    fn injected_err(what: &str) -> io::Error {
        io::Error::other(format!("injected fault: {what}"))
    }
}

/// Decide the fate of the next operation under `plan`: bump the op
/// counter and return the fault to apply, if any.
fn next_op(state: &Mutex<FaultState>, plan: &FaultPlan) -> Option<Fault> {
    let mut st = state.lock().unwrap();
    let op = st.ops;
    st.ops += 1;
    if st.crashed {
        st.faults_fired += 1;
        return Some(Fault::Fail);
    }
    if plan.crash_at_op.is_some_and(|at| op >= at) {
        st.crashed = true;
        st.faults_fired += 1;
        return Some(Fault::Fail);
    }
    if let Some(&fault) = plan.faults.get(&op) {
        st.faults_fired += 1;
        return Some(fault);
    }
    None
}

/// Byte-budget crash check for a write of `len` bytes: returns how many
/// bytes may still land (tearing the write) if the budget is crossed,
/// or `None` to let the write through whole. Landed-byte accounting
/// happens here so torn writes count only what they kept.
fn budget_write(state: &Mutex<FaultState>, plan: &FaultPlan, len: u64) -> Option<u64> {
    let mut st = state.lock().unwrap();
    let Some(budget) = plan.crash_after_bytes else {
        st.bytes_written += len;
        return None;
    };
    if st.bytes_written + len <= budget {
        st.bytes_written += len;
        return None;
    }
    let keep = budget.saturating_sub(st.bytes_written);
    st.bytes_written += keep;
    st.crashed = true;
    st.faults_fired += 1;
    Some(keep)
}

/// A [`PersistIo`] wrapper that executes a [`FaultPlan`] against an
/// inner I/O implementation.
pub struct FaultIo {
    inner: Arc<dyn PersistIo>,
    plan: FaultPlan,
    state: Arc<Mutex<FaultState>>,
}

impl FaultIo {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: Arc<dyn PersistIo>, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            state: Arc::new(Mutex::new(FaultState::default())),
        }
    }

    /// Total operations observed so far (including faulted ones).
    pub fn ops(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// Total bytes actually written through the seam so far.
    pub fn bytes_written(&self) -> u64 {
        self.state.lock().unwrap().bytes_written
    }

    /// Number of operations a planned fault or crash altered.
    pub fn faults_fired(&self) -> u64 {
        self.state.lock().unwrap().faults_fired
    }

    /// Whether a crash mode has triggered (all further ops fail).
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    fn next_op(&self) -> Option<Fault> {
        next_op(&self.state, &self.plan)
    }
}

/// A [`PersistFile`] whose operations consult the shared fault state.
struct FaultFile {
    inner: Box<dyn PersistFile>,
    plan: FaultPlan,
    state: Arc<Mutex<FaultState>>,
}

impl FaultFile {
    fn next_op(&self) -> Option<Fault> {
        next_op(&self.state, &self.plan)
    }

    fn budget_write(&self, len: u64) -> Option<u64> {
        budget_write(&self.state, &self.plan, len)
    }
}

impl PersistFile for FaultFile {
    fn write_all_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        match self.next_op() {
            Some(Fault::Fail) => return Err(FaultState::injected_err("write failed")),
            Some(Fault::Torn { keep }) => {
                let keep = keep.min(buf.len());
                self.state.lock().unwrap().bytes_written += keep as u64;
                self.inner.write_all_at(offset, &buf[..keep])?;
                return Err(FaultState::injected_err("torn write"));
            }
            Some(Fault::BitFlip { byte }) => {
                let mut corrupt = buf.to_vec();
                if !corrupt.is_empty() {
                    let i = byte % corrupt.len();
                    corrupt[i] ^= 1;
                }
                self.state.lock().unwrap().bytes_written += corrupt.len() as u64;
                return self.inner.write_all_at(offset, &corrupt);
            }
            None => {}
        }
        match self.budget_write(buf.len() as u64) {
            None => self.inner.write_all_at(offset, buf),
            Some(keep) => {
                self.inner.write_all_at(offset, &buf[..keep as usize])?;
                Err(FaultState::injected_err("crash: byte budget exhausted"))
            }
        }
    }

    fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        if self.next_op().is_some() {
            return Err(FaultState::injected_err("read failed"));
        }
        self.inner.read_exact_at(offset, buf)
    }

    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        if self.next_op().is_some() {
            return Err(FaultState::injected_err("read failed"));
        }
        self.inner.read_to_end(buf)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        if self.next_op().is_some() {
            return Err(FaultState::injected_err("truncate failed"));
        }
        self.inner.set_len(len)
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.next_op().is_some() {
            return Err(FaultState::injected_err("fsync failed"));
        }
        self.inner.sync()
    }
}

impl PersistIo for FaultIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn PersistFile>> {
        if self.next_op().is_some() {
            return Err(FaultState::injected_err("create failed"));
        }
        let inner = self.inner.create(path)?;
        Ok(Box::new(FaultFile {
            inner,
            plan: self.plan.clone(),
            state: Arc::clone(&self.state),
        }))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn PersistFile>> {
        if self.next_op().is_some() {
            return Err(FaultState::injected_err("open failed"));
        }
        let inner = self.inner.open(path)?;
        Ok(Box::new(FaultFile {
            inner,
            plan: self.plan.clone(),
            state: Arc::clone(&self.state),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.next_op().is_some() {
            return Err(FaultState::injected_err("rename failed"));
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if self.next_op().is_some() {
            return Err(FaultState::injected_err("remove failed"));
        }
        self.inner.remove_file(path)
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        if self.next_op().is_some() {
            return Err(FaultState::injected_err("dir fsync failed"));
        }
        self.inner.sync_parent_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::RealIo;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("smx-fault-{}-{tag}.bin", std::process::id()))
    }

    fn io_with(plan: FaultPlan) -> FaultIo {
        FaultIo::new(Arc::new(RealIo), plan)
    }

    #[test]
    fn clean_plan_is_transparent_and_counts() {
        let path = temp_path("clean");
        let io = io_with(FaultPlan::clean());
        let mut f = io.create(&path).unwrap(); // op 0
        f.write_all_at(0, b"abcdef").unwrap(); // op 1
        f.sync().unwrap(); // op 2
        assert_eq!(io.read(&path).unwrap(), b"abcdef"); // ops 3 (open) + 4 (read)
        assert_eq!(io.ops(), 5);
        assert_eq!(io.bytes_written(), 6);
        assert_eq!(io.faults_fired(), 0);
        assert!(!io.crashed());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_write_keeps_prefix_then_errors() {
        let path = temp_path("torn");
        let io = io_with(FaultPlan::clean().fault_at(1, Fault::Torn { keep: 3 }));
        let mut f = io.create(&path).unwrap();
        assert!(f.write_all_at(0, b"abcdef").is_err());
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"abc");
        assert_eq!(io.faults_fired(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_reports_success_with_corrupt_bytes() {
        let path = temp_path("flip");
        let io = io_with(FaultPlan::clean().fault_at(1, Fault::BitFlip { byte: 2 }));
        let mut f = io.create(&path).unwrap();
        f.write_all_at(0, b"abcdef").unwrap();
        drop(f);
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk[2], b'c' ^ 1);
        assert_eq!(&on_disk[..2], b"ab");
        assert_eq!(&on_disk[3..], b"def");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_at_op_fails_everything_after() {
        let path = temp_path("crashop");
        let io = io_with(FaultPlan::clean().crash_at_op(1));
        let mut f = io.create(&path).unwrap(); // op 0: fine
        assert!(f.write_all_at(0, b"abc").is_err()); // op 1: crash
        assert!(f.sync().is_err()); // dead forever
        assert!(io.open(&path).is_err());
        assert!(io.crashed());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn byte_budget_tears_the_crossing_write() {
        let path = temp_path("budget");
        let io = io_with(FaultPlan::clean().crash_after_bytes(4));
        let mut f = io.create(&path).unwrap();
        f.write_all_at(0, b"abc").unwrap(); // 3 bytes, under budget
        assert!(f.write_all_at(3, b"defg").is_err()); // crosses at byte 4
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"abcd");
        assert_eq!(io.bytes_written(), 4);
        assert!(io.crashed());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_and_rename_faults_fire() {
        let path = temp_path("sync");
        let io = io_with(
            FaultPlan::clean()
                .fault_at(2, Fault::Fail)
                .fault_at(3, Fault::Fail),
        );
        let mut f = io.create(&path).unwrap(); // op 0
        f.write_all_at(0, b"x").unwrap(); // op 1
        assert!(f.sync().is_err()); // op 2: fsync fault
        drop(f);
        assert!(io.rename(&path, &temp_path("sync2")).is_err()); // op 3
        assert!(path.exists(), "failed rename must not move the file");
        std::fs::remove_file(&path).ok();
    }
}

//! Little-endian wire primitives shared by the snapshot and spill
//! formats: a growable writer, a bounds-checked reader, and the FNV-1a
//! checksum. Every multi-byte integer on disk goes through these, so
//! endianness and truncation handling live in exactly one place.

use crate::error::PersistError;

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash — the section/record checksum. Not
/// cryptographic; it guards against bit rot and truncation, not
/// adversaries (the compatibility policy in the crate docs says so).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

/// Continue an FNV-1a 64 hash over more bytes — for checksums over
/// discontiguous parts of a record (everything but the checksum field
/// itself).
pub fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Append-only little-endian encoder.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// An `f64` as its IEEE-754 bit pattern — the bitwise-round-trip
    /// guarantee rests on never converting through decimal.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Raw bytes, caller-framed.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Overwrite 8 bytes at `at` with `v` — used to backpatch section
    /// table offsets once payload positions are known.
    pub fn patch_u64(&mut self, at: usize, v: u64) {
        self.buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
    }
}

/// Bounds-checked little-endian decoder over a byte slice. Every read
/// past the end is [`PersistError::Truncated`] — no panics, no partial
/// values.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn get_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Length-prefixed UTF-8 string; invalid UTF-8 is `Corrupt`, a
    /// length beyond the data is `Truncated`.
    pub fn get_str(&mut self) -> Result<String, PersistError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Corrupt("non-UTF-8 string".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_primitive() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_str("schéma ▲");
        w.put_str("");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_str().unwrap(), "schéma ▲");
        assert_eq!(r.get_str().unwrap(), "");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut w = Writer::new();
        w.put_u32(123);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..2]);
        assert!(matches!(r.get_u32(), Err(PersistError::Truncated)));
        // A string whose length prefix overruns the buffer.
        let mut w = Writer::new();
        w.put_u32(1000);
        w.put_bytes(b"short");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_str(), Err(PersistError::Truncated)));
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut w = Writer::new();
        w.put_u32(2);
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_str(), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        // Published FNV-1a test vector.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
    }

    #[test]
    fn patch_u64_backpatches_in_place() {
        let mut w = Writer::new();
        w.put_u64(0);
        w.put_u8(9);
        let at = 0;
        w.patch_u64(at, 42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u64().unwrap(), 42);
        assert_eq!(r.get_u8().unwrap(), 9);
    }
}

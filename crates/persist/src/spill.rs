//! The eviction spill file: an append-only, per-record-checksummed log
//! of score rows the store's LRU bound pushed out of memory.
//!
//! [`SpillFile`] implements [`EvictionSink`], so installing one on a
//! bounded [`LabelStore`](smx_repo::LabelStore) turns eviction from
//! "discard and recompute later" into "append to disk and read back
//! later": a faulted row is byte-for-byte the row that was evicted,
//! hence bitwise identical to its recomputed twin (the spill tests
//! assert exactly that).
//!
//! # On-disk layout
//!
//! ```text
//! magic   8   b"SMXSPILL"
//! version u32 (currently 1)
//! records…
//! ```
//!
//! Each record: `query_len: u32 | row_len: u32 | checksum: u64 |
//! labels_fingerprint: u64 | query bytes | row_len × f64 bits`.
//! `checksum` is FNV-1a 64 over **every other byte of the record** —
//! lengths, fingerprint, query, and row — so a flipped bit anywhere
//! (including in the query text, which keys the index) invalidates the
//! record instead of silently serving one query's distances under
//! another's name. `labels_fingerprint` is the store's label-prefix
//! fingerprint at spill time (recovery hands it back so the store can
//! reject rows a diverged repository lineage spilled — see
//! [`EvictionSink`]'s fingerprint contract). Records for the same
//! query supersede earlier ones (a re-evicted row was possibly
//! extended in the meantime); an in-memory index maps each query to
//! its newest record.
//!
//! [`SpillFile::open`] rebuilds the index by scanning: a record whose
//! framing is intact but whose checksum fails is **skipped** (its
//! neighbours survive one rotten record); a record whose declared
//! lengths overrun the file — the crash-mid-append torn tail, or a
//! length field too damaged to skip past — ends the scan and is
//! truncated off the file so later appends can't interleave with
//! garbage. Nothing un-checksummed is ever indexed.
//!
//! # Growth and compaction
//!
//! The log is append-only and superseded records' bytes are never
//! reclaimed in place. Re-evicting a row whose newest record is
//! byte-identical (the common fault-then-evict thrash cycle under a
//! tight bound) is deduplicated — no new record is written — so
//! steady-state thrash over a fixed vocabulary does not grow the file.
//! What does grow it: rows re-spilled *longer* after repository adds,
//! and ever-fresh queries. [`SpillFile::compact`] reclaims the dead
//! bytes crash-safely: the live (newest, still-verifying) records are
//! rewritten to a sibling temp file, fsynced, and atomically renamed
//! over the log — a crash at any point leaves either the old log or
//! the compacted one, never neither.
//!
//! # Failure policy
//!
//! The sink is best-effort by contract — correctness never depends on
//! it — but a write error no longer poisons it forever. Each failure
//! drops the file handle and starts a deterministic cooldown
//! ([`RetryPolicy`]): the sink declines the next
//! `backoff_base << (failures-1)` spills (op-count backoff — no wall
//! clock, so tests replay exactly), then re-opens the file from disk
//! (rescanning, exactly like [`SpillFile::open`]) and tries again.
//! Only after `max_reopens` *consecutive* failed cycles does the sink
//! poison itself permanently; any successful write resets the cycle.
//! [`SpillFile::reopen`] runs the same recovery by hand, and also
//! un-poisons an exhausted sink (the operator's override). A
//! read/checksum error on recovery returns `None` for the same
//! best-effort reason.

use crate::error::PersistError;
use crate::io::{staging_path, PersistFile, PersistIo, RealIo};
use crate::wire::fnv1a;
use parking_lot::Mutex;
use smx_repo::{EvictionSink, SinkHealth};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SPILL_MAGIC: [u8; 8] = *b"SMXSPILL";
const SPILL_VERSION: u32 = 1;
/// Fixed bytes per record before the variable payload.
const RECORD_HEADER: usize = 4 + 4 + 8 + 8;
/// Bytes before the first record (magic + version).
const FILE_HEADER: usize = SPILL_MAGIC.len() + 4;

/// Where a query's newest spilled row lives in the file.
struct Slot {
    /// Byte offset of the whole record (its `query_len` field).
    record_at: u64,
    /// Row length in values (×8 bytes on disk).
    values: u32,
    /// FNV-1a 64 over the whole record except the checksum field.
    checksum: u64,
    /// The spilling store's label-prefix fingerprint for this row.
    labels_fingerprint: u64,
}

/// Checksum of a record: FNV-1a 64 over `bytes` with the 8-byte
/// checksum field at `bytes[8..16]` excluded.
fn record_checksum(bytes: &[u8]) -> u64 {
    crate::wire::fnv1a_extend(fnv1a(&bytes[..8]), &bytes[16..])
}

/// How a [`SpillFile`] recovers from write errors: after each failure
/// the sink declines `backoff_base << (consecutive_failures - 1)`
/// spills (deterministic op-count backoff — no wall clock), then
/// re-opens the file and retries. `max_reopens` consecutive failed
/// cycles poison the sink permanently; any success resets the count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Consecutive failed write/reopen cycles before permanent poison.
    pub max_reopens: u32,
    /// Declined spills after the first failure; doubles per consecutive
    /// failure (`backoff_base << (failures - 1)`).
    pub backoff_base: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_reopens: 3,
            backoff_base: 4,
        }
    }
}

struct Inner {
    /// The open log, or `None` after a write error dropped the handle
    /// (re-acquired by the retry path or [`SpillFile::reopen`]).
    file: Option<Box<dyn PersistFile>>,
    index: HashMap<String, Slot>,
    /// Append position (== current file length).
    end: u64,
    /// Consecutive failed write/reopen cycles (reset by any success).
    consecutive_failures: u32,
    /// Spills still to decline before the next reopen/retry attempt.
    cooldown: u64,
    /// Retry budget exhausted; all spills declined until [`SpillFile::reopen`].
    poisoned: bool,
    /// Write errors ever observed (monotonic).
    write_errors: u64,
    /// Successful reopen cycles ever completed (monotonic).
    reopens: u64,
}

impl Inner {
    /// Register one failed write/reopen cycle: bump counters, drop the
    /// handle, and either arm the next cooldown or poison the sink.
    fn note_failure(&mut self, policy: RetryPolicy) {
        self.file = None;
        self.consecutive_failures += 1;
        if self.consecutive_failures > policy.max_reopens {
            self.poisoned = true;
        } else {
            self.cooldown = policy
                .backoff_base
                .saturating_mul(1 << (self.consecutive_failures - 1).min(62));
        }
    }
}

/// An append-only spill log implementing [`EvictionSink`].
///
/// Thread-safe: one mutex serialises file access; the store already
/// guarantees sink calls happen outside its row-cache lock, so spill
/// I/O never blocks row lookups.
pub struct SpillFile {
    inner: Mutex<Inner>,
    io: Arc<dyn PersistIo>,
    retry: RetryPolicy,
    path: PathBuf,
}

/// Scan spill-file bytes into an index: verify the header, index every
/// whole record that passes its checksum, and return the index plus the
/// end of the last whole record (the torn-tail truncation point).
fn scan_records(bytes: &[u8]) -> Result<(HashMap<String, Slot>, u64), PersistError> {
    if bytes.len() < FILE_HEADER {
        return Err(PersistError::Truncated);
    }
    if bytes[..8] != SPILL_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SPILL_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let mut index = HashMap::new();
    let mut pos = FILE_HEADER;
    // Scan whole records. A checksum-failed record with intact framing
    // is skipped (one rotten record must not take its neighbours down);
    // a framing overrun ends the scan as a torn tail.
    while bytes.len() - pos >= RECORD_HEADER {
        let qlen = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let values = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let checksum = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().expect("8"));
        let labels_fingerprint =
            u64::from_le_bytes(bytes[pos + 16..pos + 24].try_into().expect("8"));
        let payload = pos + RECORD_HEADER + qlen;
        let next = payload + values as usize * 8;
        if next > bytes.len() {
            break; // torn final record (or unskippable length rot)
        }
        if record_checksum(&bytes[pos..next]) == checksum {
            if let Ok(query) = std::str::from_utf8(&bytes[pos + RECORD_HEADER..payload]) {
                index.insert(
                    query.to_owned(),
                    Slot {
                        record_at: pos as u64,
                        values,
                        checksum,
                        labels_fingerprint,
                    },
                );
            }
        }
        pos = next;
    }
    Ok((index, pos as u64))
}

impl SpillFile {
    /// Create a fresh spill file at `path`, truncating anything there.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Self::create_with(Arc::new(RealIo), path)
    }

    /// [`create`](Self::create) through an explicit [`PersistIo`] (the
    /// fault-injection seam).
    pub fn create_with(
        io: Arc<dyn PersistIo>,
        path: impl AsRef<Path>,
    ) -> Result<Self, PersistError> {
        let path = path.as_ref().to_path_buf();
        let mut file = io.create(&path)?;
        let mut header = Vec::with_capacity(FILE_HEADER);
        header.extend_from_slice(&SPILL_MAGIC);
        header.extend_from_slice(&SPILL_VERSION.to_le_bytes());
        file.write_all_at(0, &header)?;
        Ok(SpillFile {
            inner: Mutex::new(Inner {
                file: Some(file),
                index: HashMap::new(),
                end: FILE_HEADER as u64,
                consecutive_failures: 0,
                cooldown: 0,
                poisoned: false,
                write_errors: 0,
                reopens: 0,
            }),
            io,
            retry: RetryPolicy::default(),
            path,
        })
    }

    /// Open an existing spill file, rebuilding the query index by
    /// scanning its records — this is what makes spilled rows survive a
    /// restart alongside a snapshot. A record failing its checksum is
    /// skipped (neighbours survive); a torn final record (crash during
    /// append) is truncated off and overwritten by the next spill.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Self::open_with(Arc::new(RealIo), path)
    }

    /// [`open`](Self::open) through an explicit [`PersistIo`].
    pub fn open_with(io: Arc<dyn PersistIo>, path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let path = path.as_ref().to_path_buf();
        let mut file = io.open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (index, end) = scan_records(&bytes)?;
        // Drop the torn tail from the file, not just from the index —
        // left in place, a later append could leave residual garbage
        // past the new frontier for the *next* open to misparse as
        // records at a misaligned offset.
        file.set_len(end)?;
        Ok(SpillFile {
            inner: Mutex::new(Inner {
                file: Some(file),
                index,
                end,
                consecutive_failures: 0,
                cooldown: 0,
                poisoned: false,
                write_errors: 0,
                reopens: 0,
            }),
            io,
            retry: RetryPolicy::default(),
            path,
        })
    }

    /// Replace the default [`RetryPolicy`] (builder-style, at setup).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The file this sink appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of distinct queries with a spilled row.
    pub fn len(&self) -> usize {
        self.inner.lock().index.len()
    }

    /// Whether nothing was spilled yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().index.is_empty()
    }

    /// Bytes appended so far (records and header).
    pub fn spilled_bytes(&self) -> u64 {
        self.inner.lock().end
    }

    /// Whether the retry budget is exhausted and spilling is disabled
    /// (until an explicit [`reopen`](Self::reopen) succeeds).
    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().poisoned
    }

    /// Whether the sink is currently declining spills — poisoned, in a
    /// post-failure cooldown, or between a failure and a reopen.
    pub fn is_degraded(&self) -> bool {
        let inner = self.inner.lock();
        inner.poisoned || inner.cooldown > 0 || inner.file.is_none()
    }

    /// Re-open the log from disk, rescanning its records, and reset the
    /// failure state — including a poisoned sink (the operator's
    /// explicit override; the automatic retry path never un-poisons).
    /// Rows whose appends were lost to the failed handle simply aren't
    /// in the rescanned index; the store recomputes them.
    pub fn reopen(&self) -> Result<(), PersistError> {
        let mut inner = self.inner.lock();
        Self::reopen_locked(&self.io, &self.path, &mut inner)?;
        inner.poisoned = false;
        inner.consecutive_failures = 0;
        inner.cooldown = 0;
        Ok(())
    }

    /// The reopen primitive: fresh handle, rescan, swap index/end.
    /// Leaves failure bookkeeping to the caller.
    fn reopen_locked(
        io: &Arc<dyn PersistIo>,
        path: &Path,
        inner: &mut Inner,
    ) -> Result<(), PersistError> {
        let mut file = io.open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (index, end) = scan_records(&bytes)?;
        file.set_len(end)?;
        inner.file = Some(file);
        inner.index = index;
        inner.end = end;
        inner.reopens += 1;
        Ok(())
    }

    /// Reclaim the bytes of superseded and rotten records by rewriting
    /// the live ones — newest record per query, re-verified against its
    /// checksum — to a sibling temp file and atomically swapping it
    /// over the log (write → fsync → rename → dir fsync).
    ///
    /// Crash-safe: a crash (or injected fault) at any point leaves
    /// either the old log or the fully compacted one on disk — both
    /// open cleanly and serve every live row. Records are rewritten in
    /// their original file order, so a compacted log's iteration order
    /// is deterministic. On success the handle and index point at the
    /// compacted file; on failure after the swap already happened, the
    /// sink degrades (handle dropped) and the retry path re-opens the
    /// compacted file.
    pub fn compact(&self) -> Result<(), PersistError> {
        let mut span = smx_obs::span("persist.spill.compact");
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let bytes_before = inner.end;
        let Some(file) = inner.file.as_mut() else {
            // No live handle (mid-recovery): compacting now would race
            // the retry path's rescan. The caller can reopen() first.
            return Err(PersistError::Io(std::io::Error::other(
                "spill file handle lost; reopen before compacting",
            )));
        };
        // Read the live records through the existing handle, oldest
        // offset first, re-verifying each against its indexed checksum.
        // A record that rotted on disk since it was indexed is dropped
        // here — compaction is exactly the moment to shed it.
        let mut slots: Vec<(&String, &Slot)> = inner.index.iter().collect();
        slots.sort_by_key(|(_, slot)| slot.record_at);
        let mut compacted = Vec::with_capacity(FILE_HEADER);
        compacted.extend_from_slice(&SPILL_MAGIC);
        compacted.extend_from_slice(&SPILL_VERSION.to_le_bytes());
        let mut new_index: HashMap<String, Slot> = HashMap::with_capacity(slots.len());
        for (query, slot) in slots {
            let len = RECORD_HEADER + query.len() + slot.values as usize * 8;
            let mut record = vec![0u8; len];
            if file.read_exact_at(slot.record_at, &mut record).is_err() {
                // Unreadable record: shed it, keep compacting the rest.
                continue;
            }
            if record_checksum(&record) != slot.checksum
                || &record[RECORD_HEADER..RECORD_HEADER + query.len()] != query.as_bytes()
            {
                continue;
            }
            let record_at = compacted.len() as u64;
            compacted.extend_from_slice(&record);
            new_index.insert(
                query.clone(),
                Slot {
                    record_at,
                    values: slot.values,
                    checksum: slot.checksum,
                    labels_fingerprint: slot.labels_fingerprint,
                },
            );
        }
        // Stage + atomic swap. Any failure before the rename leaves the
        // old log untouched (best-effort staging cleanup); failure
        // *after* the rename leaves the compacted log in place.
        let staging = staging_path(&self.path);
        let staged = (|| -> Result<(), PersistError> {
            let mut f = self.io.create(&staging)?;
            f.write_all_at(0, &compacted)?;
            f.sync()?;
            drop(f);
            self.io.rename(&staging, &self.path)?;
            self.io.sync_parent_dir(&self.path)?;
            Ok(())
        })();
        if staged.is_err() {
            self.io.remove_file(&staging).ok();
            return staged;
        }
        // The swap happened: the old handle now points at the orphaned
        // inode, so re-open from the path. The index must describe the
        // *compacted* layout either way; if the reopen fails, drop the
        // handle and let the retry path re-acquire it later.
        inner.index = new_index;
        inner.end = compacted.len() as u64;
        if span.is_active() {
            span.attr("bytes_before", bytes_before);
            span.attr("bytes_after", inner.end);
            span.attr("live_records", inner.index.len());
        }
        match self.io.open(&self.path) {
            Ok(f) => inner.file = Some(f),
            Err(_) => inner.note_failure(self.retry),
        }
        Ok(())
    }

    /// The sink's health as a plain snapshot (also surfaced through
    /// [`EvictionSink::health`] into `LabelStore::health`).
    pub fn health(&self) -> SinkHealth {
        let inner = self.inner.lock();
        SinkHealth {
            poisoned: inner.poisoned,
            degraded: inner.poisoned || inner.cooldown > 0 || inner.file.is_none(),
            write_errors: inner.write_errors,
            reopens: inner.reopens,
            spilled_bytes: inner.end,
            live_records: inner.index.len() as u64,
        }
    }
}

impl EvictionSink for SpillFile {
    fn on_evict(&self, query: &str, row: &[f64], labels_fingerprint: u64) -> bool {
        let mut inner = self.inner.lock();
        if inner.poisoned {
            return false;
        }
        // Post-failure cooldown: decline deterministically many spills
        // before spending I/O on a reopen attempt.
        if inner.cooldown > 0 {
            inner.cooldown -= 1;
            return false;
        }
        // Handle lost to an earlier failure: this spill pays for the
        // reopen attempt (rescan from disk), then proceeds on success.
        if inner.file.is_none() && Self::reopen_locked(&self.io, &self.path, &mut inner).is_err() {
            inner.note_failure(self.retry);
            return false;
        }
        let mut record = Vec::with_capacity(RECORD_HEADER + query.len() + row.len() * 8);
        record.extend_from_slice(&(query.len() as u32).to_le_bytes());
        record.extend_from_slice(&(row.len() as u32).to_le_bytes());
        record.extend_from_slice(&[0u8; 8]); // checksum patched below
        record.extend_from_slice(&labels_fingerprint.to_le_bytes());
        record.extend_from_slice(query.as_bytes());
        for &v in row {
            record.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let checksum = record_checksum(&record);
        record[8..16].copy_from_slice(&checksum.to_le_bytes());
        if let Some(slot) = inner.index.get(query) {
            // A fault-then-re-evict cycle under a tight bound hands back
            // the exact record we already hold; appending it again would
            // grow the log while storing nothing new.
            if slot.values as usize == row.len()
                && slot.checksum == checksum
                && slot.labels_fingerprint == labels_fingerprint
            {
                return true;
            }
            // Keep a strictly longer record over a shorter one: rows
            // only ever extend within a lineage, so a shorter spill for
            // the same query is a stale row racing an extended one out
            // of order — superseding it would silently shrink warm
            // state. (A recover that finds the longer record rotten
            // removes the entry, reopening the slot.)
            if slot.values as usize > row.len() {
                return true;
            }
        }
        let at = inner.end;
        let file = inner.file.as_mut().expect("handle ensured above");
        if file.write_all_at(at, &record).is_err() {
            // Half-written tail is tolerated by open()/reopen(); drop
            // the handle and enter the cooldown-then-reopen cycle
            // rather than risk compounding the damage on a dead handle.
            inner.write_errors += 1;
            inner.note_failure(self.retry);
            return false;
        }
        inner.consecutive_failures = 0;
        inner.end += record.len() as u64;
        inner.index.insert(
            query.to_owned(),
            Slot {
                record_at: at,
                values: row.len() as u32,
                checksum,
                labels_fingerprint,
            },
        );
        true
    }

    fn recover(&self, query: &str) -> Option<(Vec<f64>, u64)> {
        let mut inner = self.inner.lock();
        let (record_at, values, checksum, labels_fingerprint) = {
            let slot = inner.index.get(query)?;
            (
                slot.record_at,
                slot.values as usize,
                slot.checksum,
                slot.labels_fingerprint,
            )
        };
        // Read and re-verify the *whole* record — the checksum covers
        // lengths, fingerprint, and query text too, so rot anywhere in
        // it (not just the row bytes) fails the recovery. Recovery is
        // read-only, so a lost write handle doesn't gate it — but with
        // no handle at all there is nothing to read from (the retry
        // path will rebuild the index on reopen anyway).
        let len = RECORD_HEADER + query.len() + values * 8;
        let mut record = vec![0u8; len];
        inner
            .file
            .as_mut()?
            .read_exact_at(record_at, &mut record)
            .ok()?;
        if record_checksum(&record) != checksum
            || &record[RECORD_HEADER..RECORD_HEADER + query.len()] != query.as_bytes()
        {
            // The record rotted since it was indexed. Drop the entry so
            // a future eviction of the (re-swept) row writes a fresh
            // copy instead of dedup-matching the stale slot forever.
            inner.index.remove(query);
            return None;
        }
        let row = record[RECORD_HEADER + query.len()..]
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect();
        Some((row, labels_fingerprint))
    }

    fn health(&self) -> Option<SinkHealth> {
        Some(SpillFile::health(self))
    }
}

impl std::fmt::Debug for SpillFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SpillFile")
            .field("path", &self.path)
            .field("rows", &inner.index.len())
            .field("bytes", &inner.end)
            .field("poisoned", &inner.poisoned)
            .field("write_errors", &inner.write_errors)
            .field("reopens", &inner.reopens)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultIo, FaultPlan};
    use std::fs::OpenOptions;
    use std::io::Write;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("smx-spill-{}-{tag}.bin", std::process::id()))
    }

    #[test]
    fn spill_and_recover_round_trips_bitwise() {
        let path = temp_path("roundtrip");
        let spill = SpillFile::create(&path).unwrap();
        assert!(spill.is_empty());
        let row = vec![0.25, -0.0, f64::NAN, 1.0 / 3.0];
        assert!(spill.on_evict("bookTitle", &row, 0xFEED));
        assert_eq!(spill.len(), 1);
        let (back, fingerprint) = spill.recover("bookTitle").unwrap();
        assert_eq!(fingerprint, 0xFEED);
        assert_eq!(back.len(), row.len());
        for (a, b) in row.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(spill.recover("never-spilled").is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn newest_record_wins_and_survives_reopen() {
        let path = temp_path("reopen");
        {
            let spill = SpillFile::create(&path).unwrap();
            spill.on_evict("q", &[1.0, 2.0], 2);
            spill.on_evict("other", &[9.0], 1);
            spill.on_evict("q", &[1.0, 2.0, 3.0], 3); // extended re-evict
        }
        let spill = SpillFile::open(&path).unwrap();
        assert_eq!(spill.len(), 2);
        assert_eq!(spill.recover("q").unwrap(), (vec![1.0, 2.0, 3.0], 3));
        assert_eq!(spill.recover("other").unwrap(), (vec![9.0], 1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_ignored_on_open() {
        let path = temp_path("torn");
        {
            let spill = SpillFile::create(&path).unwrap();
            spill.on_evict("whole", &[4.0], 7);
        }
        // Append half a record by hand.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[7u8; 9]).unwrap();
        drop(f);
        let spill = SpillFile::open(&path).unwrap();
        assert_eq!(spill.len(), 1);
        assert_eq!(spill.recover("whole").unwrap(), (vec![4.0], 7));
        // And appending over the torn tail works.
        assert!(spill.on_evict("fresh", &[5.0], 8));
        assert_eq!(spill.recover("fresh").unwrap(), (vec![5.0], 8));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn identical_reevictions_do_not_grow_the_log() {
        let path = temp_path("dedup");
        let spill = SpillFile::create(&path).unwrap();
        let row = vec![1.0, 2.0, 3.0];
        assert!(spill.on_evict("hot", &row, 5));
        let size = spill.spilled_bytes();
        // The thrash cycle: same query, same bytes, same fingerprint.
        for _ in 0..10 {
            assert!(spill.on_evict("hot", &row, 5));
        }
        assert_eq!(
            spill.spilled_bytes(),
            size,
            "identical re-spills must not append"
        );
        // A genuinely different row (extended after an add) does append.
        assert!(spill.on_evict("hot", &[1.0, 2.0, 3.0, 4.0], 6));
        assert!(spill.spilled_bytes() > size);
        assert_eq!(spill.recover("hot").unwrap(), (vec![1.0, 2.0, 3.0, 4.0], 6));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_truncates_the_torn_tail_from_disk() {
        let path = temp_path("truncate");
        {
            let spill = SpillFile::create(&path).unwrap();
            spill.on_evict("kept", &[2.0], 1);
        }
        let valid_len = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[9u8; 333]).unwrap(); // torn 333-byte tail
        drop(f);
        {
            let spill = SpillFile::open(&path).unwrap();
            assert_eq!(spill.len(), 1);
            assert_eq!(spill.spilled_bytes(), valid_len);
        }
        // The garbage is gone from disk, not just skipped: a re-open
        // sees a clean file ending at the last whole record.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), valid_len);
        let spill = SpillFile::open(&path).unwrap();
        assert_eq!(spill.recover("kept").unwrap(), (vec![2.0], 1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_foreign_files() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"definitely not a spill file").unwrap();
        assert!(matches!(
            SpillFile::open(&path),
            Err(PersistError::BadMagic)
        ));
        std::fs::write(&path, b"tiny").unwrap();
        assert!(matches!(
            SpillFile::open(&path),
            Err(PersistError::Truncated)
        ));
        let mut bad_version = SPILL_MAGIC.to_vec();
        bad_version.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, bad_version).unwrap();
        assert!(matches!(
            SpillFile::open(&path),
            Err(PersistError::UnsupportedVersion(99))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_payload_fails_checksum_on_recover() {
        let path = temp_path("corrupt");
        let spill = SpillFile::create(&path).unwrap();
        spill.on_evict("q", &[1.5, 2.5], 0);
        // Flip a byte of the row payload in place.
        {
            let mut inner = spill.inner.lock();
            let offset = inner.index["q"].record_at + (RECORD_HEADER + "q".len()) as u64;
            inner
                .file
                .as_mut()
                .unwrap()
                .write_all_at(offset, &[0xAB])
                .unwrap();
        }
        assert!(
            spill.recover("q").is_none(),
            "corrupt payload must not be served"
        );
        // The failed recovery vacates the index slot, so a later
        // eviction of the same (re-swept) row writes a fresh record
        // instead of dedup-matching the rotten one forever.
        assert_eq!(spill.len(), 0);
        assert!(spill.on_evict("q", &[1.5, 2.5], 0));
        assert_eq!(spill.recover("q").unwrap(), (vec![1.5, 2.5], 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shorter_rows_do_not_supersede_longer_records() {
        // Two threads can evict the same query out of order around a
        // repository add; the stale, shorter row must not shrink the
        // spilled state the extended one already persisted.
        let path = temp_path("supersede");
        let spill = SpillFile::create(&path).unwrap();
        spill.on_evict("q", &[1.0, 2.0, 3.0], 3);
        let size = spill.spilled_bytes();
        assert!(
            spill.on_evict("q", &[1.0, 2.0], 2),
            "shorter spill is acknowledged"
        );
        assert_eq!(spill.spilled_bytes(), size, "…but must not be written");
        assert_eq!(spill.recover("q").unwrap(), (vec![1.0, 2.0, 3.0], 3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_query_text_cannot_serve_under_another_name() {
        // The checksum covers the query bytes too: rot that renames a
        // record must invalidate it, not serve the old row under the
        // new name after a reopen.
        let path = temp_path("query-rot");
        {
            let spill = SpillFile::create(&path).unwrap();
            spill.on_evict("alpha", &[1.0, 2.0], 3);
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let at = 12 + RECORD_HEADER + "alpha".len() - 1; // last query byte
        assert_eq!(bytes[at], b'a');
        bytes[at] = b'b'; // "alpha" -> "alphb", still valid UTF-8
        std::fs::write(&path, &bytes).unwrap();
        let spill = SpillFile::open(&path).unwrap();
        assert!(
            spill.recover("alphb").is_none(),
            "rotten record must not be indexed"
        );
        assert!(spill.recover("alpha").is_none());
        assert_eq!(spill.len(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_rot_skips_one_record_and_keeps_the_rest() {
        let path = temp_path("mid-rot");
        {
            let spill = SpillFile::create(&path).unwrap();
            spill.on_evict("first", &[1.0], 1);
            spill.on_evict("second", &[2.0, 2.5], 2);
            spill.on_evict("third", &[3.0], 3);
        }
        // Rot a payload byte of the *first* record; its framing stays
        // intact, so the scan must skip it and still index the rest.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = 12 + RECORD_HEADER + "first".len();
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let spill = SpillFile::open(&path).unwrap();
        assert_eq!(
            spill.len(),
            2,
            "one rotten record must not take its neighbours down"
        );
        assert!(spill.recover("first").is_none());
        assert_eq!(spill.recover("second").unwrap(), (vec![2.0, 2.5], 2));
        assert_eq!(spill.recover("third").unwrap(), (vec![3.0], 3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_error_degrades_then_recovers_instead_of_poisoning() {
        let path = temp_path("retry");
        // Op layout: create=0, header write=1; the first eviction's
        // record write is op 2 — fail exactly that one.
        let io = Arc::new(FaultIo::new(
            Arc::new(RealIo),
            FaultPlan::clean().fault_at(2, Fault::Fail),
        ));
        let spill = SpillFile::create_with(io, &path)
            .unwrap()
            .with_retry_policy(RetryPolicy {
                max_reopens: 3,
                backoff_base: 2,
            });
        assert!(!spill.on_evict("q", &[1.0], 7), "injected write fails");
        assert!(spill.is_degraded());
        assert!(!spill.is_poisoned(), "one failure must not poison");
        let health = SpillFile::health(&spill);
        assert_eq!(health.write_errors, 1);
        // Cooldown: backoff_base spills declined without touching disk.
        assert!(!spill.on_evict("q", &[1.0], 7));
        assert!(!spill.on_evict("q", &[1.0], 7));
        // Next spill pays for the reopen and succeeds.
        assert!(spill.on_evict("q", &[1.0], 7), "reopen + retry succeeds");
        assert!(!spill.is_degraded());
        assert_eq!(spill.recover("q").unwrap(), (vec![1.0], 7));
        let health = SpillFile::health(&spill);
        assert_eq!(health.reopens, 1);
        assert!(!health.poisoned && !health.degraded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn exhausted_retry_budget_poisons_until_explicit_reopen() {
        let path = temp_path("poison");
        // Crash the backing io permanently from the first record write.
        let io = Arc::new(FaultIo::new(
            Arc::new(RealIo),
            FaultPlan::clean().crash_at_op(2),
        ));
        let spill = SpillFile::create_with(io, &path)
            .unwrap()
            .with_retry_policy(RetryPolicy {
                max_reopens: 2,
                backoff_base: 1,
            });
        // Drive evictions until the budget exhausts. Each failure costs
        // one attempt + backoff_base<<k declined spills.
        for _ in 0..64 {
            spill.on_evict("q", &[1.0], 7);
        }
        assert!(spill.is_poisoned(), "budget exhausted must poison");
        assert!(!spill.on_evict("q", &[1.0], 7));
        // The file on disk is still a valid (empty) spill log; an
        // explicit reopen through a healthy io would recover it — but
        // this sink's io is dead forever, so reopen itself fails and
        // the sink stays poisoned.
        assert!(spill.reopen().is_err());
        assert!(spill.is_poisoned());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn explicit_reopen_unpoisons_a_recovered_sink() {
        let path = temp_path("unpoison");
        // Healthy io, but poison the sink artificially by exhausting a
        // zero-budget policy against one injected failure.
        let io = Arc::new(FaultIo::new(
            Arc::new(RealIo),
            FaultPlan::clean().fault_at(2, Fault::Fail),
        ));
        let spill = SpillFile::create_with(io, &path)
            .unwrap()
            .with_retry_policy(RetryPolicy {
                max_reopens: 0,
                backoff_base: 1,
            });
        assert!(!spill.on_evict("q", &[1.0], 7));
        assert!(spill.is_poisoned(), "zero budget poisons on first error");
        spill.reopen().expect("healthy io reopens");
        assert!(!spill.is_poisoned());
        assert!(spill.on_evict("q", &[1.0], 7));
        assert_eq!(spill.recover("q").unwrap(), (vec![1.0], 7));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_reclaims_superseded_records_bitwise() {
        let path = temp_path("compact");
        let spill = SpillFile::create(&path).unwrap();
        let nan_row = vec![f64::NAN, -0.0, 1.0 / 3.0];
        spill.on_evict("a", &[1.0], 1);
        spill.on_evict("b", &nan_row, 2);
        spill.on_evict("a", &[1.0, 2.0], 3); // supersedes the first "a"
        spill.on_evict("c", &[4.0], 4);
        let before = spill.spilled_bytes();
        spill.compact().unwrap();
        assert!(spill.spilled_bytes() < before, "dead bytes reclaimed");
        assert_eq!(spill.len(), 3);
        // Every live row survives bitwise, through the live handle…
        let (b_row, fp) = spill.recover("b").unwrap();
        assert_eq!(fp, 2);
        for (x, y) in nan_row.iter().zip(&b_row) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(spill.recover("a").unwrap(), (vec![1.0, 2.0], 3));
        assert_eq!(spill.recover("c").unwrap(), (vec![4.0], 4));
        // …and appends keep working on the compacted file…
        assert!(spill.on_evict("d", &[5.0], 5));
        drop(spill);
        // …and a fresh open of the compacted file sees everything.
        let spill = SpillFile::open(&path).unwrap();
        assert_eq!(spill.len(), 4);
        assert_eq!(spill.recover("a").unwrap(), (vec![1.0, 2.0], 3));
        assert_eq!(spill.recover("d").unwrap(), (vec![5.0], 5));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_compaction_leaves_the_old_log_intact() {
        let path = temp_path("compact-fail");
        {
            let spill = SpillFile::create(&path).unwrap();
            spill.on_evict("a", &[1.0], 1);
            spill.on_evict("a", &[1.0, 2.0], 2);
            spill.on_evict("b", &[3.0], 3);
        }
        let before = std::fs::read(&path).unwrap();
        // Reopen through an io that crashes at the staging create (the
        // first io-level op after open+read+set_len = ops 0,1,2).
        let io = Arc::new(FaultIo::new(
            Arc::new(RealIo),
            FaultPlan::clean().crash_at_op(3),
        ));
        let spill = SpillFile::open_with(io, &path).unwrap();
        assert!(spill.compact().is_err());
        drop(spill);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            before,
            "failed compaction must not touch the log"
        );
        let spill = SpillFile::open(&path).unwrap();
        assert_eq!(spill.recover("a").unwrap(), (vec![1.0, 2.0], 2));
        assert_eq!(spill.recover("b").unwrap(), (vec![3.0], 3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sink_health_is_visible_through_the_trait() {
        let path = temp_path("health");
        let spill = SpillFile::create(&path).unwrap();
        spill.on_evict("q", &[1.0, 2.0], 9);
        let sink: &dyn EvictionSink = &spill;
        let health = sink.health().expect("spill files report health");
        assert!(!health.poisoned && !health.degraded);
        assert_eq!(health.live_records, 1);
        assert_eq!(health.spilled_bytes, spill.spilled_bytes());
        std::fs::remove_file(&path).ok();
    }
}

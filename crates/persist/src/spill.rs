//! The eviction spill file: an append-only, per-record-checksummed log
//! of score rows the store's LRU bound pushed out of memory.
//!
//! [`SpillFile`] implements [`EvictionSink`], so installing one on a
//! bounded [`LabelStore`](smx_repo::LabelStore) turns eviction from
//! "discard and recompute later" into "append to disk and read back
//! later": a faulted row is byte-for-byte the row that was evicted,
//! hence bitwise identical to its recomputed twin (the spill tests
//! assert exactly that).
//!
//! # On-disk layout
//!
//! ```text
//! magic   8   b"SMXSPILL"
//! version u32 (currently 1)
//! records…
//! ```
//!
//! Each record: `query_len: u32 | row_len: u32 | checksum: u64 |
//! labels_fingerprint: u64 | query bytes | row_len × f64 bits`.
//! `checksum` is FNV-1a 64 over **every other byte of the record** —
//! lengths, fingerprint, query, and row — so a flipped bit anywhere
//! (including in the query text, which keys the index) invalidates the
//! record instead of silently serving one query's distances under
//! another's name. `labels_fingerprint` is the store's label-prefix
//! fingerprint at spill time (recovery hands it back so the store can
//! reject rows a diverged repository lineage spilled — see
//! [`EvictionSink`]'s fingerprint contract). Records for the same
//! query supersede earlier ones (a re-evicted row was possibly
//! extended in the meantime); an in-memory index maps each query to
//! its newest record.
//!
//! [`SpillFile::open`] rebuilds the index by scanning: a record whose
//! framing is intact but whose checksum fails is **skipped** (its
//! neighbours survive one rotten record); a record whose declared
//! lengths overrun the file — the crash-mid-append torn tail, or a
//! length field too damaged to skip past — ends the scan and is
//! truncated off the file so later appends can't interleave with
//! garbage. Nothing un-checksummed is ever indexed.
//!
//! # Growth
//!
//! The log is append-only and superseded records' bytes are never
//! reclaimed. Re-evicting a row whose newest record is byte-identical
//! (the common fault-then-evict thrash cycle under a tight bound) is
//! deduplicated — no new record is written — so steady-state thrash
//! over a fixed vocabulary does not grow the file. What does grow it:
//! rows re-spilled *longer* after repository adds, and ever-fresh
//! queries. Long-lived deployments should rotate the file at a size
//! threshold (create a fresh `SpillFile` and swap it via
//! `set_eviction_sink` — recompute covers the gap) until a compacting
//! rewrite exists (ROADMAP).
//!
//! # Failure policy
//!
//! The sink is best-effort by contract: a write error marks the file
//! poisoned (further spills are declined, so the store just recomputes
//! — correctness never depends on the sink), and a read/checksum error
//! on recovery returns `None` for the same reason.

use crate::error::PersistError;
use crate::wire::fnv1a;
use parking_lot::Mutex;
use smx_repo::EvictionSink;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const SPILL_MAGIC: [u8; 8] = *b"SMXSPILL";
const SPILL_VERSION: u32 = 1;
/// Fixed bytes per record before the variable payload.
const RECORD_HEADER: usize = 4 + 4 + 8 + 8;

/// Where a query's newest spilled row lives in the file.
struct Slot {
    /// Byte offset of the whole record (its `query_len` field).
    record_at: u64,
    /// Row length in values (×8 bytes on disk).
    values: u32,
    /// FNV-1a 64 over the whole record except the checksum field.
    checksum: u64,
    /// The spilling store's label-prefix fingerprint for this row.
    labels_fingerprint: u64,
}

/// Checksum of a record: FNV-1a 64 over `bytes` with the 8-byte
/// checksum field at `bytes[8..16]` excluded.
fn record_checksum(bytes: &[u8]) -> u64 {
    crate::wire::fnv1a_extend(fnv1a(&bytes[..8]), &bytes[16..])
}

struct Inner {
    file: File,
    index: HashMap<String, Slot>,
    /// Append position (== current file length).
    end: u64,
    /// Set on the first write error; all later spills are declined.
    poisoned: bool,
}

/// An append-only spill log implementing [`EvictionSink`].
///
/// Thread-safe: one mutex serialises file access; the store already
/// guarantees sink calls happen outside its row-cache lock, so spill
/// I/O never blocks row lookups.
pub struct SpillFile {
    inner: Mutex<Inner>,
    path: PathBuf,
}

impl SpillFile {
    /// Create a fresh spill file at `path`, truncating anything there.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(&SPILL_MAGIC)?;
        file.write_all(&SPILL_VERSION.to_le_bytes())?;
        let end = (SPILL_MAGIC.len() + 4) as u64;
        Ok(SpillFile {
            inner: Mutex::new(Inner {
                file,
                index: HashMap::new(),
                end,
                poisoned: false,
            }),
            path,
        })
    }

    /// Open an existing spill file, rebuilding the query index by
    /// scanning its records — this is what makes spilled rows survive a
    /// restart alongside a snapshot. A record failing its checksum is
    /// skipped (neighbours survive); a torn final record (crash during
    /// append) is truncated off and overwritten by the next spill.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < SPILL_MAGIC.len() + 4 {
            return Err(PersistError::Truncated);
        }
        if bytes[..8] != SPILL_MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != SPILL_VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let mut index = HashMap::new();
        let mut pos = SPILL_MAGIC.len() + 4;
        // Scan whole records. A checksum-failed record with intact
        // framing is skipped (one rotten record must not take its
        // neighbours down); a framing overrun ends the scan as a torn
        // tail.
        while bytes.len() - pos >= RECORD_HEADER {
            let qlen =
                u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let values = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            let checksum = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().expect("8"));
            let labels_fingerprint =
                u64::from_le_bytes(bytes[pos + 16..pos + 24].try_into().expect("8"));
            let payload = pos + RECORD_HEADER + qlen;
            let next = payload + values as usize * 8;
            if next > bytes.len() {
                break; // torn final record (or unskippable length rot)
            }
            if record_checksum(&bytes[pos..next]) == checksum {
                if let Ok(query) = std::str::from_utf8(&bytes[pos + RECORD_HEADER..payload]) {
                    index.insert(
                        query.to_owned(),
                        Slot {
                            record_at: pos as u64,
                            values,
                            checksum,
                            labels_fingerprint,
                        },
                    );
                }
            }
            pos = next;
        }
        let end = pos as u64;
        // Drop the torn tail from the file, not just from the index —
        // left in place, a later append could leave residual garbage
        // past the new frontier for the *next* open to misparse as
        // records at a misaligned offset.
        file.set_len(end)?;
        file.seek(SeekFrom::Start(end))?;
        Ok(SpillFile {
            inner: Mutex::new(Inner {
                file,
                index,
                end,
                poisoned: false,
            }),
            path,
        })
    }

    /// The file this sink appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of distinct queries with a spilled row.
    pub fn len(&self) -> usize {
        self.inner.lock().index.len()
    }

    /// Whether nothing was spilled yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().index.is_empty()
    }

    /// Bytes appended so far (records and header).
    pub fn spilled_bytes(&self) -> u64 {
        self.inner.lock().end
    }

    /// Whether a write error disabled further spilling.
    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().poisoned
    }
}

impl EvictionSink for SpillFile {
    fn on_evict(&self, query: &str, row: &[f64], labels_fingerprint: u64) -> bool {
        let mut inner = self.inner.lock();
        if inner.poisoned {
            return false;
        }
        let mut record = Vec::with_capacity(RECORD_HEADER + query.len() + row.len() * 8);
        record.extend_from_slice(&(query.len() as u32).to_le_bytes());
        record.extend_from_slice(&(row.len() as u32).to_le_bytes());
        record.extend_from_slice(&[0u8; 8]); // checksum patched below
        record.extend_from_slice(&labels_fingerprint.to_le_bytes());
        record.extend_from_slice(query.as_bytes());
        for &v in row {
            record.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let checksum = record_checksum(&record);
        record[8..16].copy_from_slice(&checksum.to_le_bytes());
        if let Some(slot) = inner.index.get(query) {
            // A fault-then-re-evict cycle under a tight bound hands back
            // the exact record we already hold; appending it again would
            // grow the log while storing nothing new.
            if slot.values as usize == row.len()
                && slot.checksum == checksum
                && slot.labels_fingerprint == labels_fingerprint
            {
                return true;
            }
            // Keep a strictly longer record over a shorter one: rows
            // only ever extend within a lineage, so a shorter spill for
            // the same query is a stale row racing an extended one out
            // of order — superseding it would silently shrink warm
            // state. (A recover that finds the longer record rotten
            // removes the entry, reopening the slot.)
            if slot.values as usize > row.len() {
                return true;
            }
        }
        let at = inner.end;
        if inner
            .file
            .seek(SeekFrom::Start(at))
            .and_then(|_| inner.file.write_all(&record))
            .is_err()
        {
            // Half-written tail is tolerated by open(); decline this and
            // every later spill rather than risk compounding the damage.
            inner.poisoned = true;
            return false;
        }
        inner.end += record.len() as u64;
        inner.index.insert(
            query.to_owned(),
            Slot {
                record_at: at,
                values: row.len() as u32,
                checksum,
                labels_fingerprint,
            },
        );
        true
    }

    fn recover(&self, query: &str) -> Option<(Vec<f64>, u64)> {
        let mut inner = self.inner.lock();
        let (record_at, values, checksum, labels_fingerprint) = {
            let slot = inner.index.get(query)?;
            (
                slot.record_at,
                slot.values as usize,
                slot.checksum,
                slot.labels_fingerprint,
            )
        };
        // Read and re-verify the *whole* record — the checksum covers
        // lengths, fingerprint, and query text too, so rot anywhere in
        // it (not just the row bytes) fails the recovery.
        let len = RECORD_HEADER + query.len() + values * 8;
        let mut record = vec![0u8; len];
        inner.file.seek(SeekFrom::Start(record_at)).ok()?;
        inner.file.read_exact(&mut record).ok()?;
        // Restore the append position for the next on_evict.
        let end = inner.end;
        inner.file.seek(SeekFrom::Start(end)).ok()?;
        if record_checksum(&record) != checksum
            || &record[RECORD_HEADER..RECORD_HEADER + query.len()] != query.as_bytes()
        {
            // The record rotted since it was indexed. Drop the entry so
            // a future eviction of the (re-swept) row writes a fresh
            // copy instead of dedup-matching the stale slot forever.
            inner.index.remove(query);
            return None;
        }
        let row = record[RECORD_HEADER + query.len()..]
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect();
        Some((row, labels_fingerprint))
    }
}

impl std::fmt::Debug for SpillFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SpillFile")
            .field("path", &self.path)
            .field("rows", &inner.index.len())
            .field("bytes", &inner.end)
            .field("poisoned", &inner.poisoned)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("smx-spill-{}-{tag}.bin", std::process::id()))
    }

    #[test]
    fn spill_and_recover_round_trips_bitwise() {
        let path = temp_path("roundtrip");
        let spill = SpillFile::create(&path).unwrap();
        assert!(spill.is_empty());
        let row = vec![0.25, -0.0, f64::NAN, 1.0 / 3.0];
        assert!(spill.on_evict("bookTitle", &row, 0xFEED));
        assert_eq!(spill.len(), 1);
        let (back, fingerprint) = spill.recover("bookTitle").unwrap();
        assert_eq!(fingerprint, 0xFEED);
        assert_eq!(back.len(), row.len());
        for (a, b) in row.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(spill.recover("never-spilled").is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn newest_record_wins_and_survives_reopen() {
        let path = temp_path("reopen");
        {
            let spill = SpillFile::create(&path).unwrap();
            spill.on_evict("q", &[1.0, 2.0], 2);
            spill.on_evict("other", &[9.0], 1);
            spill.on_evict("q", &[1.0, 2.0, 3.0], 3); // extended re-evict
        }
        let spill = SpillFile::open(&path).unwrap();
        assert_eq!(spill.len(), 2);
        assert_eq!(spill.recover("q").unwrap(), (vec![1.0, 2.0, 3.0], 3));
        assert_eq!(spill.recover("other").unwrap(), (vec![9.0], 1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_ignored_on_open() {
        let path = temp_path("torn");
        {
            let spill = SpillFile::create(&path).unwrap();
            spill.on_evict("whole", &[4.0], 7);
        }
        // Append half a record by hand.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[7u8; 9]).unwrap();
        drop(f);
        let spill = SpillFile::open(&path).unwrap();
        assert_eq!(spill.len(), 1);
        assert_eq!(spill.recover("whole").unwrap(), (vec![4.0], 7));
        // And appending over the torn tail works.
        assert!(spill.on_evict("fresh", &[5.0], 8));
        assert_eq!(spill.recover("fresh").unwrap(), (vec![5.0], 8));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn identical_reevictions_do_not_grow_the_log() {
        let path = temp_path("dedup");
        let spill = SpillFile::create(&path).unwrap();
        let row = vec![1.0, 2.0, 3.0];
        assert!(spill.on_evict("hot", &row, 5));
        let size = spill.spilled_bytes();
        // The thrash cycle: same query, same bytes, same fingerprint.
        for _ in 0..10 {
            assert!(spill.on_evict("hot", &row, 5));
        }
        assert_eq!(
            spill.spilled_bytes(),
            size,
            "identical re-spills must not append"
        );
        // A genuinely different row (extended after an add) does append.
        assert!(spill.on_evict("hot", &[1.0, 2.0, 3.0, 4.0], 6));
        assert!(spill.spilled_bytes() > size);
        assert_eq!(spill.recover("hot").unwrap(), (vec![1.0, 2.0, 3.0, 4.0], 6));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_truncates_the_torn_tail_from_disk() {
        let path = temp_path("truncate");
        {
            let spill = SpillFile::create(&path).unwrap();
            spill.on_evict("kept", &[2.0], 1);
        }
        let valid_len = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[9u8; 333]).unwrap(); // torn 333-byte tail
        drop(f);
        {
            let spill = SpillFile::open(&path).unwrap();
            assert_eq!(spill.len(), 1);
            assert_eq!(spill.spilled_bytes(), valid_len);
        }
        // The garbage is gone from disk, not just skipped: a re-open
        // sees a clean file ending at the last whole record.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), valid_len);
        let spill = SpillFile::open(&path).unwrap();
        assert_eq!(spill.recover("kept").unwrap(), (vec![2.0], 1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_foreign_files() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"definitely not a spill file").unwrap();
        assert!(matches!(
            SpillFile::open(&path),
            Err(PersistError::BadMagic)
        ));
        std::fs::write(&path, b"tiny").unwrap();
        assert!(matches!(
            SpillFile::open(&path),
            Err(PersistError::Truncated)
        ));
        let mut bad_version = SPILL_MAGIC.to_vec();
        bad_version.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, bad_version).unwrap();
        assert!(matches!(
            SpillFile::open(&path),
            Err(PersistError::UnsupportedVersion(99))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_payload_fails_checksum_on_recover() {
        let path = temp_path("corrupt");
        let spill = SpillFile::create(&path).unwrap();
        spill.on_evict("q", &[1.5, 2.5], 0);
        // Flip a byte of the row payload in place.
        {
            let mut inner = spill.inner.lock();
            let offset = inner.index["q"].record_at + (RECORD_HEADER + "q".len()) as u64;
            inner.file.seek(SeekFrom::Start(offset)).unwrap();
            inner.file.write_all(&[0xAB]).unwrap();
            let end = inner.end;
            inner.file.seek(SeekFrom::Start(end)).unwrap();
        }
        assert!(
            spill.recover("q").is_none(),
            "corrupt payload must not be served"
        );
        // The failed recovery vacates the index slot, so a later
        // eviction of the same (re-swept) row writes a fresh record
        // instead of dedup-matching the rotten one forever.
        assert_eq!(spill.len(), 0);
        assert!(spill.on_evict("q", &[1.5, 2.5], 0));
        assert_eq!(spill.recover("q").unwrap(), (vec![1.5, 2.5], 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shorter_rows_do_not_supersede_longer_records() {
        // Two threads can evict the same query out of order around a
        // repository add; the stale, shorter row must not shrink the
        // spilled state the extended one already persisted.
        let path = temp_path("supersede");
        let spill = SpillFile::create(&path).unwrap();
        spill.on_evict("q", &[1.0, 2.0, 3.0], 3);
        let size = spill.spilled_bytes();
        assert!(
            spill.on_evict("q", &[1.0, 2.0], 2),
            "shorter spill is acknowledged"
        );
        assert_eq!(spill.spilled_bytes(), size, "…but must not be written");
        assert_eq!(spill.recover("q").unwrap(), (vec![1.0, 2.0, 3.0], 3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_query_text_cannot_serve_under_another_name() {
        // The checksum covers the query bytes too: rot that renames a
        // record must invalidate it, not serve the old row under the
        // new name after a reopen.
        let path = temp_path("query-rot");
        {
            let spill = SpillFile::create(&path).unwrap();
            spill.on_evict("alpha", &[1.0, 2.0], 3);
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let at = 12 + RECORD_HEADER + "alpha".len() - 1; // last query byte
        assert_eq!(bytes[at], b'a');
        bytes[at] = b'b'; // "alpha" -> "alphb", still valid UTF-8
        std::fs::write(&path, &bytes).unwrap();
        let spill = SpillFile::open(&path).unwrap();
        assert!(
            spill.recover("alphb").is_none(),
            "rotten record must not be indexed"
        );
        assert!(spill.recover("alpha").is_none());
        assert_eq!(spill.len(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_rot_skips_one_record_and_keeps_the_rest() {
        let path = temp_path("mid-rot");
        {
            let spill = SpillFile::create(&path).unwrap();
            spill.on_evict("first", &[1.0], 1);
            spill.on_evict("second", &[2.0, 2.5], 2);
            spill.on_evict("third", &[3.0], 3);
        }
        // Rot a payload byte of the *first* record; its framing stays
        // intact, so the scan must skip it and still index the rest.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = 12 + RECORD_HEADER + "first".len();
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let spill = SpillFile::open(&path).unwrap();
        assert_eq!(
            spill.len(),
            2,
            "one rotten record must not take its neighbours down"
        );
        assert!(spill.recover("first").is_none());
        assert_eq!(spill.recover("second").unwrap(), (vec![2.0, 2.5], 2));
        assert_eq!(spill.recover("third").unwrap(), (vec![3.0], 3));
        std::fs::remove_file(&path).ok();
    }
}

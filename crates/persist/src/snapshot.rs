//! The versioned, checksummed repository snapshot: encode a
//! [`Repository`] (schemas + label-store hot state) to bytes and
//! reassemble it, bitwise-identically, on the other side of a restart.
//!
//! See the crate docs for the byte layout and the
//! versioning/compatibility policy. Decoding is strictly
//! validate-then-assemble: the section table and every checksum are
//! verified first, then each payload is decoded into plain data, the
//! cross-references are checked (column maps vs schemas, label ids vs
//! the label list, row lengths vs the label count), and only then is a
//! [`LabelStore`] imported and the repository assembled — an error at
//! any point returns before any repository state exists.
//!
//! Two policies govern what "an error" means on load
//! ([`RecoveryPolicy`]): **Strict** rejects the snapshot on any damage
//! (the behaviour above), while **Salvage** keeps everything that still
//! verifies and *rebuilds or drops* what doesn't — only the SCHEMAS
//! section is load-bearing, because every other section is derivable
//! from it (labels and tokens by deterministic replay, rows by
//! re-sweeping on demand, config by defaults). A salvage load reports
//! exactly what it did in a [`SnapshotReport`], so degradation is
//! visible, never silent.
//!
//! Saves are crash-safe: [`Snapshot::save_snapshot_file`] stages the
//! image in a sibling temp file, fsyncs, renames over the target, and
//! fsyncs the directory — a crash at any write boundary leaves the old
//! snapshot intact (the crash-point matrix test iterates every
//! boundary).

use crate::error::PersistError;
use crate::io::{atomic_write_file, PersistIo, RealIo};
use crate::wire::{fnv1a, Reader, Writer};
use smx_repo::{LabelInterner, LabelStore, Repository, SchemaId, StoreState, TokenIndex};
use smx_xml::{Node, NodeId, Occurs, PrimitiveType, Schema};
use std::fmt;
use std::path::Path;

/// The 8-byte snapshot magic. Never changes across versions.
pub const MAGIC: [u8; 8] = *b"SMXPSNAP";

/// The snapshot format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Section ids of the version-1 layout. All are mandatory; readers
/// skip ids they don't know (see the compatibility policy).
pub mod section {
    /// Repository schemas (names + arena nodes).
    pub const SCHEMAS: u32 = 1;
    /// Interned labels + per-schema column maps.
    pub const LABELS: u32 = 2;
    /// Token inverted index postings.
    pub const TOKENS: u32 = 3;
    /// Cached score rows, least recently used first.
    pub const ROWS: u32 = 4;
    /// Store configuration (cache bound, sweep workers).
    pub const CONFIG: u32 = 5;
    /// Candidate-generation filter lanes, one `FilterProfileData` per
    /// label in id order. **Optional/additive**: snapshots written
    /// before this section existed simply lack it, and the loader
    /// rebuilds the lanes from the label text.
    pub const FILTERS: u32 = 6;
    /// Per-slot mutation state: one `(removed, generation)` pair per
    /// schema slot, in id order. **Optional/additive** like FILTERS:
    /// snapshots written before schema mutability existed lack it, and
    /// the loader treats every slot as live at generation 0 (exactly
    /// what those snapshots describe — tombstones didn't exist yet).
    pub const TOMBSTONES: u32 = 7;

    /// Every mandatory version-1 section. FILTERS and TOMBSTONES are
    /// deliberately not in this list — their absence is legal (older
    /// writers).
    pub const MANDATORY: [u32; 5] = [SCHEMAS, LABELS, TOKENS, ROWS, CONFIG];
}

/// How a snapshot load treats damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Reject the snapshot on *any* damage — a bad checksum, an
    /// undecodable payload, a failed cross-check — with a typed
    /// [`PersistError`]. The right mode when a snapshot is supposed to
    /// be authoritative.
    #[default]
    Strict,
    /// Keep everything that still verifies; rebuild or drop what
    /// doesn't. Only the SCHEMAS section is required — labels and the
    /// token index are rebuilt from the schemas by deterministic
    /// replay, damaged cached rows are dropped (a cold store, rebuilt
    /// on demand), damaged config falls back to defaults. What was
    /// salvaged is reported in the returned [`SnapshotReport`]; match
    /// answers stay bitwise-identical either way because every rebuilt
    /// structure is a pure function of the schemas. The right mode for
    /// a warm restart: it never fails when a cold start would succeed.
    Salvage,
}

/// Why a section needed salvaging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Damage {
    /// The section is absent from the table (or its table entry was
    /// itself unreadable).
    Missing,
    /// The section's payload bytes fail their FNV-1a checksum.
    BadChecksum,
    /// The checksum held but the payload does not decode — the writer
    /// was corrupted before checksumming.
    Undecodable,
    /// The section decoded but contradicts another section (for
    /// example, a cached row longer than the label list).
    Inconsistent,
}

impl fmt::Display for Damage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Damage::Missing => "missing",
            Damage::BadChecksum => "bad checksum",
            Damage::Undecodable => "undecodable",
            Damage::Inconsistent => "inconsistent",
        })
    }
}

/// One salvage action a [`RecoveryPolicy::Salvage`] load performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SalvageEvent {
    /// LABELS was damaged; labels and column maps were rebuilt by
    /// replaying the interner over the schemas (identical to ingest
    /// order, so surviving cached rows stay valid).
    LabelsRebuilt(Damage),
    /// TOKENS was damaged; the token inverted index was rebuilt from
    /// the schemas.
    TokensRebuilt(Damage),
    /// ROWS was damaged (or contradicted the label list); all cached
    /// score rows were dropped — the store restarts cold and re-sweeps
    /// on demand, bitwise-identically.
    RowsDropped(Damage),
    /// CONFIG was damaged; the store uses default configuration
    /// (unbounded cache, auto sweep threads).
    ConfigDefaulted(Damage),
    /// FILTERS was damaged (checksum, decode, or a lane count that
    /// contradicts the label list); the candidate-generation filter
    /// lanes were rebuilt from the label text — identical by
    /// construction, so candidate bounds are unaffected. A snapshot
    /// that simply *predates* the section rebuilds silently, without
    /// this event.
    FiltersRebuilt(Damage),
    /// TOMBSTONES was damaged (checksum, decode, or a slot count that
    /// contradicts the schema list); every slot was marked live at
    /// generation 0. Removed slots persist as empty placeholder
    /// schemas, which every matcher skips — so match answers stay
    /// bitwise identical; only `live_schemas()` accounting and
    /// generation stamps degrade. A snapshot that *predates* the
    /// section loads all-live silently, without this event.
    TombstonesDropped(Damage),
}

impl fmt::Display for SalvageEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SalvageEvent::LabelsRebuilt(d) => {
                write!(f, "LABELS {d}: labels + column maps rebuilt from schemas")
            }
            SalvageEvent::TokensRebuilt(d) => {
                write!(f, "TOKENS {d}: token index rebuilt from schemas")
            }
            SalvageEvent::RowsDropped(d) => {
                write!(f, "ROWS {d}: cached score rows dropped (cold store)")
            }
            SalvageEvent::ConfigDefaulted(d) => {
                write!(f, "CONFIG {d}: store config reset to defaults")
            }
            SalvageEvent::FiltersRebuilt(d) => {
                write!(f, "FILTERS {d}: filter lanes rebuilt from labels")
            }
            SalvageEvent::TombstonesDropped(d) => {
                write!(f, "TOMBSTONES {d}: all slots marked live at generation 0")
            }
        }
    }
}

/// What a snapshot load had to do to produce a repository.
///
/// Strict loads always return a clean report; salvage loads list one
/// [`SalvageEvent`] per degraded section, in section order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotReport {
    /// The salvage actions taken, in section order; empty for an
    /// undamaged snapshot.
    pub events: Vec<SalvageEvent>,
}

impl SnapshotReport {
    /// Whether the snapshot loaded without any salvaging.
    pub fn is_clean(&self) -> bool {
        self.events.is_empty()
    }
}

impl fmt::Display for SnapshotReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("snapshot clean: all sections verified");
        }
        write!(f, "snapshot salvaged ({} events)", self.events.len())?;
        for e in &self.events {
            write!(f, "\n  - {e}")?;
        }
        Ok(())
    }
}

/// Snapshot persistence for repository-shaped types.
///
/// Implemented for [`Repository`]; with the trait in scope the methods
/// read as inherent: `repo.save_snapshot()`,
/// `Repository::load_snapshot(&bytes)`.
///
/// File saves are atomic (temp + fsync + rename + dir fsync) and every
/// file method has a `_with` variant taking a [`PersistIo`], so the
/// whole surface runs under fault injection in tests.
pub trait Snapshot: Sized {
    /// Serialise to the versioned snapshot format.
    fn save_snapshot(&self) -> Vec<u8>;

    /// Reconstruct from snapshot bytes under `policy`, reporting any
    /// salvage actions taken. Under [`RecoveryPolicy::Strict`] a
    /// successful load always carries a clean report.
    fn load_snapshot_report(
        bytes: &[u8],
        policy: RecoveryPolicy,
    ) -> Result<(Self, SnapshotReport), PersistError>;

    /// Reconstruct from snapshot bytes, strictly. The result is
    /// functionally indistinguishable from the instance that was saved:
    /// match results are bitwise identical and no cached work is lost.
    fn load_snapshot(bytes: &[u8]) -> Result<Self, PersistError> {
        Self::load_snapshot_report(bytes, RecoveryPolicy::Strict).map(|(this, _)| this)
    }

    /// [`save_snapshot`](Self::save_snapshot) straight to a file,
    /// crash-safely: the image is staged in a sibling temp file,
    /// fsynced, renamed over `path`, and the directory fsynced. A crash
    /// anywhere leaves the previous snapshot (if any) intact.
    fn save_snapshot_file(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        self.save_snapshot_file_with(&RealIo, path.as_ref())
    }

    /// [`save_snapshot_file`](Self::save_snapshot_file) through an
    /// explicit [`PersistIo`] (the fault-injection seam).
    fn save_snapshot_file_with(&self, io: &dyn PersistIo, path: &Path) -> Result<(), PersistError> {
        atomic_write_file(io, path, &self.save_snapshot())?;
        Ok(())
    }

    /// [`load_snapshot`](Self::load_snapshot) straight from a file.
    fn load_snapshot_file(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Self::load_snapshot(&RealIo.read(path.as_ref())?)
    }

    /// Load from a file through an explicit [`PersistIo`] under
    /// `policy`, reporting salvage actions.
    fn load_snapshot_file_with(
        io: &dyn PersistIo,
        path: &Path,
        policy: RecoveryPolicy,
    ) -> Result<(Self, SnapshotReport), PersistError> {
        Self::load_snapshot_report(&io.read(path)?, policy)
    }
}

impl Snapshot for Repository {
    fn save_snapshot(&self) -> Vec<u8> {
        let mut span = smx_obs::span("persist.snapshot.save");
        let state = self.store().export_state();
        let sections: Vec<(u32, Vec<u8>)> = vec![
            (section::SCHEMAS, encode_schemas(self)),
            (section::LABELS, encode_labels(&state)),
            (section::TOKENS, encode_tokens(&state)),
            (section::ROWS, encode_rows(&state)),
            (section::CONFIG, encode_config(&state)),
            (section::FILTERS, encode_filters(&state)),
            (section::TOMBSTONES, encode_tombstones(&state)),
        ];
        let mut w = Writer::new();
        w.put_bytes(&MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_u32(sections.len() as u32);
        // Table first (offsets backpatched), payloads after.
        let mut entry_at = Vec::with_capacity(sections.len());
        for (id, payload) in &sections {
            w.put_u32(*id);
            entry_at.push(w.len());
            w.put_u64(0); // offset, patched below
            w.put_u64(payload.len() as u64);
            w.put_u64(fnv1a(payload));
        }
        for ((_, payload), at) in sections.iter().zip(entry_at) {
            let offset = w.len() as u64;
            w.patch_u64(at, offset);
            w.put_bytes(payload);
        }
        let bytes = w.into_bytes();
        if span.is_active() {
            span.attr("sections", sections.len());
            span.attr("rows", state.rows.len());
            span.attr("bytes", bytes.len());
        }
        bytes
    }

    fn load_snapshot_report(
        bytes: &[u8],
        policy: RecoveryPolicy,
    ) -> Result<(Self, SnapshotReport), PersistError> {
        let mut span = smx_obs::span("persist.snapshot.load");
        if span.is_active() {
            span.attr("bytes", bytes.len());
            span.attr(
                "policy",
                match policy {
                    RecoveryPolicy::Strict => "strict",
                    RecoveryPolicy::Salvage => "salvage",
                },
            );
        }
        let loaded = match policy {
            RecoveryPolicy::Strict => strict_load(bytes).map(|r| (r, SnapshotReport::default())),
            RecoveryPolicy::Salvage => salvage_load(bytes),
        };
        match &loaded {
            Ok((_, report)) => span.attr("salvage_events", report.events.len()),
            Err(_) => span.attr("failed", true),
        }
        loaded
    }
}

/// The strict load: every checksum verified up front, every payload
/// decoded, every cross-check passed — any failure rejects the whole
/// snapshot before any repository state exists.
fn strict_load(bytes: &[u8]) -> Result<Repository, PersistError> {
    let sections = read_section_table(bytes)?;
    let payload = |id: u32| -> Result<&[u8], PersistError> {
        sections
            .iter()
            .find(|s| s.id == id)
            .map(|s| &bytes[s.offset..s.offset + s.len])
            .ok_or(PersistError::MissingSection(id))
    };
    let schemas = decode_schemas(payload(section::SCHEMAS)?)?;
    let (labels, schema_labels) = decode_labels(payload(section::LABELS)?)?;
    let postings = decode_tokens(payload(section::TOKENS)?)?;
    let rows = decode_rows(payload(section::ROWS)?)?;
    let (max_cached_rows, batch_threads, shards) = decode_config(payload(section::CONFIG)?)?;
    // FILTERS is additive: absent (an older writer) means the lanes are
    // rebuilt from the label text at import; *present* but undecodable
    // is damage and rejected like any other strict failure. (A present
    // section with a bad checksum never reaches here — the table pass
    // already rejected it.)
    let filters = sections
        .iter()
        .find(|s| s.id == section::FILTERS)
        .map(|s| decode_filters(&bytes[s.offset..s.offset + s.len]))
        .transpose()?;
    // TOMBSTONES follows the same additive policy: absent means every
    // slot is live at generation 0 (a pre-mutability writer).
    let tombstones = sections
        .iter()
        .find(|s| s.id == section::TOMBSTONES)
        .map(|s| decode_tombstones(&bytes[s.offset..s.offset + s.len]))
        .transpose()?;
    let state = StoreState {
        labels,
        schema_labels,
        postings,
        rows,
        max_cached_rows,
        batch_threads,
        shards,
        filters,
        tombstones,
    };
    validate(&schemas, &state)?;
    Ok(Repository::from_parts(
        schemas,
        LabelStore::import_state(state),
    ))
}

/// The salvage load: keep what verifies, rebuild or drop what doesn't.
///
/// Only SCHEMAS is load-bearing — its damage (or a damaged header) is
/// still a hard error, because without the schemas there is nothing to
/// rebuild *from*; that is exactly the case where a cold start would
/// fail too. Everything else degrades per section:
///
/// * LABELS → rebuilt by replaying [`LabelInterner`] over the schemas.
///   Replay order equals ingest order equals save order, so a rebuilt
///   label list is *identical* to the lost one and surviving cached
///   rows (prefix-indexed by label order) remain valid.
/// * TOKENS → rebuilt by replaying [`TokenIndex::add_schema`].
/// * ROWS → dropped; the store restarts cold and re-sweeps on demand.
/// * CONFIG → defaults.
fn salvage_load(bytes: &[u8]) -> Result<(Repository, SnapshotReport), PersistError> {
    let sections = read_section_table_lenient(bytes)?;
    let payload = |id: u32| -> Result<&[u8], Damage> {
        let entry = sections
            .iter()
            .find(|(s, _)| s.id == id)
            .ok_or(Damage::Missing)?;
        match entry {
            (s, true) => Ok(&bytes[s.offset..s.offset + s.len]),
            (_, false) => Err(Damage::BadChecksum),
        }
    };

    // SCHEMAS: hard-required, with the strict error taxonomy.
    let schemas = match payload(section::SCHEMAS) {
        Ok(p) => decode_schemas(p)?,
        Err(Damage::Missing) => return Err(PersistError::MissingSection(section::SCHEMAS)),
        Err(_) => return Err(PersistError::ChecksumMismatch(section::SCHEMAS)),
    };

    let mut events = Vec::new();

    // LABELS: use if it decodes and cross-checks; else replay-rebuild.
    let labels_result = payload(section::LABELS)
        .and_then(|p| decode_labels(p).map_err(|_| Damage::Undecodable))
        .and_then(|(labels, schema_labels)| {
            validate_labels(&schemas, &labels, &schema_labels)
                .map(|()| (labels, schema_labels))
                .map_err(|_| Damage::Inconsistent)
        });
    let (labels, schema_labels) = match labels_result {
        Ok(pair) => pair,
        Err(damage) => {
            events.push(SalvageEvent::LabelsRebuilt(damage));
            rebuild_labels(&schemas)
        }
    };

    // TOKENS: same shape, rebuilt via the incremental index path.
    let postings_result = payload(section::TOKENS)
        .and_then(|p| decode_tokens(p).map_err(|_| Damage::Undecodable))
        .and_then(|postings| {
            validate_postings(&schemas, &postings)
                .map(|()| postings)
                .map_err(|_| Damage::Inconsistent)
        });
    let postings = match postings_result {
        Ok(postings) => postings,
        Err(damage) => {
            events.push(SalvageEvent::TokensRebuilt(damage));
            rebuild_postings(&schemas)
        }
    };

    // ROWS: validated against the *final* label list (original or
    // rebuilt — identical by construction, but never trusted blindly).
    let rows_result = payload(section::ROWS)
        .and_then(|p| decode_rows(p).map_err(|_| Damage::Undecodable))
        .and_then(|rows| {
            validate_rows(labels.len(), &rows)
                .map(|()| rows)
                .map_err(|_| Damage::Inconsistent)
        });
    let rows = match rows_result {
        Ok(rows) => rows,
        Err(damage) => {
            events.push(SalvageEvent::RowsDropped(damage));
            Vec::new()
        }
    };

    // CONFIG: defaults on any damage.
    let (max_cached_rows, batch_threads, shards) = match payload(section::CONFIG)
        .and_then(|p| decode_config(p).map_err(|_| Damage::Undecodable))
    {
        Ok(config) => config,
        Err(damage) => {
            events.push(SalvageEvent::ConfigDefaulted(damage));
            (None, 0, 0)
        }
    };

    // FILTERS: use if present, decodable, and sized to the label list;
    // otherwise rebuild from the labels (`None` lets the store import
    // path re-derive identical lanes). A snapshot that predates the
    // section rebuilds *silently* — that is compatibility, not damage.
    let filters = match payload(section::FILTERS) {
        Ok(p) => match decode_filters(p) {
            Ok(f) if f.len() == labels.len() => Some(f),
            Ok(_) => {
                events.push(SalvageEvent::FiltersRebuilt(Damage::Inconsistent));
                None
            }
            Err(_) => {
                events.push(SalvageEvent::FiltersRebuilt(Damage::Undecodable));
                None
            }
        },
        Err(Damage::Missing) => None,
        Err(damage) => {
            events.push(SalvageEvent::FiltersRebuilt(damage));
            None
        }
    };

    // TOMBSTONES: all-live on any damage. Match answers are unaffected
    // (removed slots persist as empty schemas every matcher skips);
    // only liveness accounting and generation stamps degrade.
    let tombstones = match payload(section::TOMBSTONES) {
        Ok(p) => match decode_tombstones(p) {
            Ok(t) if t.len() == schemas.len() => Some(t),
            Ok(_) => {
                events.push(SalvageEvent::TombstonesDropped(Damage::Inconsistent));
                None
            }
            Err(_) => {
                events.push(SalvageEvent::TombstonesDropped(Damage::Undecodable));
                None
            }
        },
        Err(Damage::Missing) => None,
        Err(damage) => {
            events.push(SalvageEvent::TombstonesDropped(damage));
            None
        }
    };

    let state = StoreState {
        labels,
        schema_labels,
        postings,
        rows,
        max_cached_rows,
        batch_threads,
        shards,
        filters,
        tombstones,
    };
    // The assembled state passed its checks piecewise; the composed
    // validation must therefore hold. Debug-assert it rather than
    // re-running the full pass in release loads.
    debug_assert!(validate(&schemas, &state).is_ok());
    let repo = Repository::from_parts(schemas, LabelStore::import_state(state));
    // Stamp the degradation on the store, so callers that only ever see
    // the repository (not this report) still observe it via `health()`.
    repo.store().record_salvage_events(events.len() as u64);
    Ok((repo, SnapshotReport { events }))
}

/// Rebuild the interned label list + per-schema column maps by
/// replaying the interner over the schemas in id order — the same
/// order ingest used, so ids match the lost section exactly.
fn rebuild_labels(schemas: &[Schema]) -> (Vec<String>, Vec<Vec<u32>>) {
    let mut interner = LabelInterner::new();
    let schema_labels: Vec<Vec<u32>> = schemas
        .iter()
        .map(|s| interner.intern_schema(s).iter().map(|id| id.0).collect())
        .collect();
    let labels = (0..interner.len())
        .map(|i| interner.resolve(smx_repo::LabelId(i as u32)).to_owned())
        .collect();
    (labels, schema_labels)
}

/// Rebuild the token inverted index postings by replaying the
/// incremental `add_schema` path over the schemas in id order.
fn rebuild_postings(schemas: &[Schema]) -> Vec<(String, Vec<smx_repo::ElementRef>)> {
    let mut index = TokenIndex::default();
    for (i, schema) in schemas.iter().enumerate() {
        index.add_schema(SchemaId(i as u32), schema);
    }
    index
        .postings()
        .map(|(token, elements)| (token.to_owned(), elements.to_vec()))
        .collect()
}

/// One parsed and checksum-verified section table entry.
struct SectionEntry {
    id: u32,
    offset: usize,
    len: usize,
}

/// Parse the header + section table and verify every section's bounds
/// and checksum. Unknown section ids are kept in the table (and simply
/// never asked for) — the forward-compatibility half of the policy.
fn read_section_table(bytes: &[u8]) -> Result<Vec<SectionEntry>, PersistError> {
    let mut r = Reader::new(bytes);
    if bytes.len() < MAGIC.len() {
        return Err(PersistError::Truncated);
    }
    let mut magic = [0u8; 8];
    for m in &mut magic {
        *m = r.get_u8()?;
    }
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let count = r.get_u32()? as usize;
    // Each table entry is 28 bytes; a count the remaining bytes cannot
    // hold is a lie (the header is outside the checksummed payloads, so
    // this is the only integrity check it gets) — and must be caught
    // *before* sizing any allocation by it.
    if count > r.remaining() / 28 {
        return Err(PersistError::Truncated);
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.get_u32()?;
        let offset = r.get_u64()? as usize;
        let len = r.get_u64()? as usize;
        let checksum = r.get_u64()?;
        let end = offset.checked_add(len).ok_or(PersistError::Truncated)?;
        if end > bytes.len() {
            return Err(PersistError::Truncated);
        }
        if fnv1a(&bytes[offset..end]) != checksum {
            return Err(PersistError::ChecksumMismatch(id));
        }
        entries.push(SectionEntry { id, offset, len });
    }
    Ok(entries)
}

/// The salvage-mode table parse: the header (magic + version) is still
/// strict — without it nothing identifies these bytes as a snapshot —
/// but table entries degrade individually: an entry whose payload is
/// out of bounds or fails its checksum is kept with `false` (damaged)
/// instead of rejecting the table, and a table physically shorter than
/// its count yields the entries that fit.
fn read_section_table_lenient(bytes: &[u8]) -> Result<Vec<(SectionEntry, bool)>, PersistError> {
    let mut r = Reader::new(bytes);
    if bytes.len() < MAGIC.len() {
        return Err(PersistError::Truncated);
    }
    let mut magic = [0u8; 8];
    for m in &mut magic {
        *m = r.get_u8()?;
    }
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let count = (r.get_u32()? as usize).min(r.remaining() / 28);
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.get_u32()?;
        let offset = r.get_u64()? as usize;
        let len = r.get_u64()? as usize;
        let checksum = r.get_u64()?;
        let ok = offset
            .checked_add(len)
            .filter(|&end| end <= bytes.len())
            .is_some_and(|end| fnv1a(&bytes[offset..end]) == checksum);
        // A damaged entry keeps id but zeroes its span, so no caller
        // can index out of bounds through it.
        let (offset, len) = if ok { (offset, len) } else { (0, 0) };
        entries.push((SectionEntry { id, offset, len }, ok));
    }
    Ok(entries)
}

fn encode_schemas(repo: &Repository) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(repo.len() as u32);
    for (_, schema) in repo.iter() {
        w.put_str(schema.name());
        w.put_u32(schema.len() as u32);
        for id in schema.node_ids() {
            let node = schema.node(id);
            w.put_str(&node.name);
            w.put_u8(match node.kind {
                smx_xml::NodeKind::Element => 0,
                smx_xml::NodeKind::Attribute => 1,
            });
            w.put_u8(encode_type(node.ty));
            w.put_u32(node.occurs.min);
            match node.occurs.max {
                Some(max) => {
                    w.put_u8(1);
                    w.put_u32(max);
                }
                None => w.put_u8(0),
            }
            // Parents always precede children in the arena, so a plain
            // parent pointer reconstructs the tree in one forward pass.
            w.put_u32(node.parent.map_or(u32::MAX, |p| p.0));
        }
    }
    w.into_bytes()
}

fn decode_schemas(bytes: &[u8]) -> Result<Vec<Schema>, PersistError> {
    let mut r = Reader::new(bytes);
    let count = r.get_u32()? as usize;
    let mut schemas = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let name = r.get_str()?;
        let nodes = r.get_u32()? as usize;
        let mut schema = Schema::new(name);
        for i in 0..nodes {
            let mut node = Node::element(r.get_str()?);
            node.kind = match r.get_u8()? {
                0 => smx_xml::NodeKind::Element,
                1 => smx_xml::NodeKind::Attribute,
                k => return Err(PersistError::Corrupt(format!("unknown node kind {k}"))),
            };
            node.ty = decode_type(r.get_u8()?)?;
            let min = r.get_u32()?;
            let max = match r.get_u8()? {
                0 => None,
                1 => Some(r.get_u32()?),
                f => return Err(PersistError::Corrupt(format!("bad occurs flag {f}"))),
            };
            node.occurs = Occurs { min, max };
            let parent = r.get_u32()?;
            let added = if parent == u32::MAX {
                schema
                    .add_root(node)
                    .map_err(|e| PersistError::Corrupt(format!("schema rebuild: {e}")))?
            } else {
                if parent as usize >= i {
                    return Err(PersistError::Corrupt(format!(
                        "node {i} has forward parent {parent}"
                    )));
                }
                schema
                    .add_child(NodeId(parent), node)
                    .map_err(|e| PersistError::Corrupt(format!("schema rebuild: {e}")))?
            };
            debug_assert_eq!(added.index(), i, "arena replay preserves ids");
        }
        schemas.push(schema);
    }
    Ok(schemas)
}

fn encode_type(ty: PrimitiveType) -> u8 {
    match ty {
        PrimitiveType::Complex => 0,
        PrimitiveType::String => 1,
        PrimitiveType::Integer => 2,
        PrimitiveType::Decimal => 3,
        PrimitiveType::Date => 4,
        PrimitiveType::Boolean => 5,
        PrimitiveType::Id => 6,
    }
}

fn decode_type(v: u8) -> Result<PrimitiveType, PersistError> {
    Ok(match v {
        0 => PrimitiveType::Complex,
        1 => PrimitiveType::String,
        2 => PrimitiveType::Integer,
        3 => PrimitiveType::Decimal,
        4 => PrimitiveType::Date,
        5 => PrimitiveType::Boolean,
        6 => PrimitiveType::Id,
        t => return Err(PersistError::Corrupt(format!("unknown primitive type {t}"))),
    })
}

fn encode_labels(state: &StoreState) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(state.labels.len() as u32);
    for label in &state.labels {
        w.put_str(label);
    }
    w.put_u32(state.schema_labels.len() as u32);
    for columns in &state.schema_labels {
        w.put_u32(columns.len() as u32);
        for &id in columns {
            w.put_u32(id);
        }
    }
    w.into_bytes()
}

type LabelSections = (Vec<String>, Vec<Vec<u32>>);

fn decode_labels(bytes: &[u8]) -> Result<LabelSections, PersistError> {
    let mut r = Reader::new(bytes);
    let count = r.get_u32()? as usize;
    let mut labels = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        labels.push(r.get_str()?);
    }
    let schemas = r.get_u32()? as usize;
    let mut schema_labels = Vec::with_capacity(schemas.min(1 << 20));
    for _ in 0..schemas {
        let n = r.get_u32()? as usize;
        let mut columns = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            columns.push(r.get_u32()?);
        }
        schema_labels.push(columns);
    }
    Ok((labels, schema_labels))
}

fn encode_tokens(state: &StoreState) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(state.postings.len() as u32);
    for (token, elements) in &state.postings {
        w.put_str(token);
        w.put_u32(elements.len() as u32);
        for element in elements {
            w.put_u32(element.schema.0);
            w.put_u32(element.node.0);
        }
    }
    w.into_bytes()
}

fn decode_tokens(bytes: &[u8]) -> Result<Vec<(String, Vec<smx_repo::ElementRef>)>, PersistError> {
    let mut r = Reader::new(bytes);
    let count = r.get_u32()? as usize;
    let mut postings = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let token = r.get_str()?;
        let n = r.get_u32()? as usize;
        let mut elements = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let schema = smx_repo::SchemaId(r.get_u32()?);
            let node = NodeId(r.get_u32()?);
            elements.push(smx_repo::ElementRef { schema, node });
        }
        postings.push((token, elements));
    }
    Ok(postings)
}

fn encode_rows(state: &StoreState) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(state.rows.len() as u32);
    for (query, row) in &state.rows {
        w.put_str(query);
        w.put_u64(row.len() as u64);
        for &v in row {
            w.put_f64(v);
        }
    }
    w.into_bytes()
}

fn decode_rows(bytes: &[u8]) -> Result<Vec<(String, Vec<f64>)>, PersistError> {
    let mut r = Reader::new(bytes);
    let count = r.get_u32()? as usize;
    let mut rows = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let query = r.get_str()?;
        let n = r.get_u64()? as usize;
        if n > r.remaining() / 8 {
            return Err(PersistError::Truncated);
        }
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(r.get_f64()?);
        }
        rows.push((query, row));
    }
    Ok(rows)
}

fn encode_config(state: &StoreState) -> Vec<u8> {
    let mut w = Writer::new();
    match state.max_cached_rows {
        Some(cap) => {
            w.put_u8(1);
            w.put_u64(cap as u64);
        }
        None => w.put_u8(0),
    }
    w.put_u64(state.batch_threads as u64);
    // Trailing, added with the sharded store: the configured shard
    // count (0 = auto). Old readers never reach it (they stop after
    // batch_threads); old payloads simply end before it — see
    // decode_config.
    w.put_u64(state.shards as u64);
    w.into_bytes()
}

fn decode_config(bytes: &[u8]) -> Result<(Option<usize>, usize, usize), PersistError> {
    let mut r = Reader::new(bytes);
    let max_cached_rows = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_u64()? as usize),
        f => return Err(PersistError::Corrupt(format!("bad config flag {f}"))),
    };
    let batch_threads = r.get_u64()? as usize;
    // The shard count is a trailing addition: payloads written before
    // the sharded store end here, and 0 (auto) reproduces their
    // behaviour exactly — the pre-sharding store was one shard, and
    // auto on the same machine resolves the same everywhere answers
    // are concerned (sharding never changes results, only contention).
    let shards = if r.remaining() >= 8 {
        r.get_u64()? as usize
    } else {
        0
    };
    Ok((max_cached_rows, batch_threads, shards))
}

/// TOMBSTONES payload: slot count, then one `(removed, generation)`
/// pair per schema slot in id order.
fn encode_tombstones(state: &StoreState) -> Vec<u8> {
    let mut w = Writer::new();
    let slots = state.tombstones.as_deref().unwrap_or(&[]);
    w.put_u32(slots.len() as u32);
    for &(removed, generation) in slots {
        w.put_u8(u8::from(removed));
        w.put_u64(generation);
    }
    w.into_bytes()
}

fn decode_tombstones(bytes: &[u8]) -> Result<Vec<(bool, u64)>, PersistError> {
    let mut r = Reader::new(bytes);
    let count = r.get_u32()? as usize;
    if count > r.remaining() / 9 {
        return Err(PersistError::Truncated);
    }
    let mut slots = Vec::with_capacity(count);
    for _ in 0..count {
        let removed = match r.get_u8()? {
            0 => false,
            1 => true,
            f => return Err(PersistError::Corrupt(format!("bad tombstone flag {f}"))),
        };
        let generation = r.get_u64()?;
        slots.push((removed, generation));
    }
    Ok(slots)
}

fn encode_filters(state: &StoreState) -> Vec<u8> {
    let mut w = Writer::new();
    let lanes = state.filters.as_deref().unwrap_or(&[]);
    w.put_u32(lanes.len() as u32);
    for p in lanes {
        w.put_u32(p.norm_len);
        for &c in &p.prefix {
            w.put_u32(c);
        }
        w.put_u32(p.unigrams.len() as u32);
        for &(scalar, count) in &p.unigrams {
            w.put_u32(scalar);
            w.put_u32(count);
        }
        w.put_u32(p.token_count);
        w.put_u32(p.token_lens.len() as u32);
        for &l in &p.token_lens {
            w.put_u32(l);
        }
        w.put_u64(p.initials);
        w.put_u32(p.gram_keys.len() as u32);
        for &k in &p.gram_keys {
            w.put_u64(k);
        }
        for &c in &p.gram_counts {
            w.put_u32(c);
        }
        w.put_u64(p.gram_total);
    }
    w.into_bytes()
}

fn decode_filters(bytes: &[u8]) -> Result<Vec<smx_repo::FilterProfileData>, PersistError> {
    let mut r = Reader::new(bytes);
    let count = r.get_u32()? as usize;
    let mut lanes = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let norm_len = r.get_u32()?;
        let mut prefix = [0u32; 4];
        for c in &mut prefix {
            *c = r.get_u32()?;
        }
        let n = r.get_u32()? as usize;
        if n > r.remaining() / 8 {
            return Err(PersistError::Truncated);
        }
        let mut unigrams = Vec::with_capacity(n);
        for _ in 0..n {
            let scalar = r.get_u32()?;
            let count = r.get_u32()?;
            unigrams.push((scalar, count));
        }
        let token_count = r.get_u32()?;
        let n = r.get_u32()? as usize;
        if n > r.remaining() / 4 {
            return Err(PersistError::Truncated);
        }
        let mut token_lens = Vec::with_capacity(n);
        for _ in 0..n {
            token_lens.push(r.get_u32()?);
        }
        let initials = r.get_u64()?;
        let n = r.get_u32()? as usize;
        if n > r.remaining() / 12 {
            return Err(PersistError::Truncated);
        }
        let mut gram_keys = Vec::with_capacity(n);
        for _ in 0..n {
            gram_keys.push(r.get_u64()?);
        }
        let mut gram_counts = Vec::with_capacity(n);
        for _ in 0..n {
            gram_counts.push(r.get_u32()?);
        }
        let gram_total = r.get_u64()?;
        lanes.push(smx_repo::FilterProfileData {
            norm_len,
            prefix,
            unigrams,
            token_count,
            token_lens,
            initials,
            gram_keys,
            gram_counts,
            gram_total,
        });
    }
    Ok(lanes)
}

/// Cross-reference the decoded sections before any store is built: the
/// label list must be duplicate-free, every column map must mirror its
/// schema's node names through the label list, every cached row must be
/// a valid prefix of the label list, and every token posting must point
/// at a real element (the pre-filter path indexes schemas by these
/// references unchecked). Composed from the per-section validators the
/// salvage path uses piecewise.
fn validate(schemas: &[Schema], state: &StoreState) -> Result<(), PersistError> {
    validate_labels(schemas, &state.labels, &state.schema_labels)?;
    validate_rows(state.labels.len(), &state.rows)?;
    validate_postings(schemas, &state.postings)?;
    validate_filters(state.labels.len(), state.filters.as_deref())?;
    validate_tombstones(schemas.len(), state.tombstones.as_deref())
}

/// The TOMBSTONES cross-check: when present, exactly one
/// `(removed, generation)` pair per schema slot.
fn validate_tombstones(
    schema_count: usize,
    tombstones: Option<&[(bool, u64)]>,
) -> Result<(), PersistError> {
    match tombstones {
        Some(slots) if slots.len() != schema_count => Err(PersistError::Corrupt(format!(
            "{} tombstone slots for {schema_count} schemas",
            slots.len()
        ))),
        _ => Ok(()),
    }
}

/// The FILTERS cross-check: when present, exactly one lane entry per
/// label. (Lane-internal invariants are re-validated by the store at
/// import; a violation there degrades to a rebuild from label text,
/// which is bitwise-equivalent by construction.)
fn validate_filters(
    label_count: usize,
    filters: Option<&[smx_repo::FilterProfileData]>,
) -> Result<(), PersistError> {
    match filters {
        Some(lanes) if lanes.len() != label_count => Err(PersistError::Corrupt(format!(
            "{} filter lanes for {label_count} labels",
            lanes.len()
        ))),
        _ => Ok(()),
    }
}

/// The LABELS cross-checks: duplicate-free label list, one column map
/// per schema, every column map mirroring its schema's node names
/// through the label list.
fn validate_labels(
    schemas: &[Schema],
    labels: &[String],
    schema_labels: &[Vec<u32>],
) -> Result<(), PersistError> {
    let mut seen = std::collections::HashSet::with_capacity(labels.len());
    for label in labels {
        if !seen.insert(label.as_str()) {
            return Err(PersistError::Corrupt(format!("duplicate label {label:?}")));
        }
    }
    if schema_labels.len() != schemas.len() {
        return Err(PersistError::Corrupt(format!(
            "{} column maps for {} schemas",
            schema_labels.len(),
            schemas.len()
        )));
    }
    for (i, (schema, columns)) in schemas.iter().zip(schema_labels).enumerate() {
        if columns.len() != schema.len() {
            return Err(PersistError::Corrupt(format!(
                "schema {i} column map has {} entries for {} nodes",
                columns.len(),
                schema.len()
            )));
        }
        for (node, &label) in schema.node_ids().zip(columns) {
            let name = labels.get(label as usize).ok_or_else(|| {
                PersistError::Corrupt(format!("schema {i} references label {label}"))
            })?;
            if *name != schema.node(node).name {
                return Err(PersistError::Corrupt(format!(
                    "schema {i} node {node} labelled {name:?}, expected {:?}",
                    schema.node(node).name
                )));
            }
        }
    }
    Ok(())
}

/// The ROWS cross-check: every cached row must be a valid prefix of the
/// label list.
fn validate_rows(label_count: usize, rows: &[(String, Vec<f64>)]) -> Result<(), PersistError> {
    for (query, row) in rows {
        if row.len() > label_count {
            return Err(PersistError::Corrupt(format!(
                "row {query:?} has {} entries for {label_count} labels",
                row.len()
            )));
        }
    }
    Ok(())
}

/// The TOKENS cross-check: every posting must point at a real element.
fn validate_postings(
    schemas: &[Schema],
    postings: &[(String, Vec<smx_repo::ElementRef>)],
) -> Result<(), PersistError> {
    for (token, elements) in postings {
        for element in elements {
            let schema = schemas.get(element.schema.index()).ok_or_else(|| {
                PersistError::Corrupt(format!(
                    "token {token:?} posting references schema {}",
                    element.schema
                ))
            })?;
            if element.node.index() >= schema.len() {
                return Err(PersistError::Corrupt(format!(
                    "token {token:?} posting references node {} of {}-node schema {}",
                    element.node,
                    schema.len(),
                    element.schema
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_xml::SchemaBuilder;

    fn repository() -> Repository {
        let mut repo = Repository::new();
        repo.add(
            SchemaBuilder::new("bib")
                .root("bibliography")
                .child("book", |b| {
                    b.leaf("title", PrimitiveType::String)
                        .leaf("year", PrimitiveType::Integer)
                })
                .build(),
        );
        repo.add(
            SchemaBuilder::new("shop")
                .root("store")
                .leaf("title", PrimitiveType::String)
                .build(),
        );
        repo.store().score_row("bookTitle");
        repo.store().score_row("title");
        repo
    }

    #[test]
    fn snapshot_round_trips_schemas_and_hot_state() {
        let repo = repository();
        let bytes = repo.save_snapshot();
        let loaded = Repository::load_snapshot(&bytes).expect("snapshot decodes");
        assert_eq!(loaded, repo, "schema lists must be equal");
        for (sid, schema) in repo.iter() {
            assert_eq!(loaded.schema(sid), schema);
        }
        let (a, b) = (repo.store(), loaded.store());
        assert_eq!(a.len(), b.len());
        assert_eq!(b.cached_rows(), 2);
        for query in ["bookTitle", "title"] {
            let (x, y) = (a.score_row(query), b.score_row(query));
            assert_eq!(x.len(), y.len());
            for (p, q) in x.iter().zip(y.iter()) {
                assert_eq!(p.to_bits(), q.to_bits(), "{query:?}");
            }
        }
        assert_eq!(b.pair_evals(), 0, "loaded rows must serve from cache");
    }

    #[test]
    fn empty_repository_round_trips() {
        let repo = Repository::new();
        let loaded = Repository::load_snapshot(&repo.save_snapshot()).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.store().len(), 0);
        assert_eq!(loaded.store().cached_rows(), 0);
    }

    #[test]
    fn config_round_trips() {
        let mut repo = Repository::with_store_config(smx_repo::StoreConfig {
            shards: 0,
            max_cached_rows: Some(3),
            batch_threads: 2,
        });
        repo.add(SchemaBuilder::new("s").root("r").build());
        let loaded = Repository::load_snapshot(&repo.save_snapshot()).unwrap();
        assert_eq!(loaded.store().config(), repo.store().config());
    }

    /// Flip one payload byte of `id`'s section (without re-stamping the
    /// checksum) — the canonical "damaged section" for salvage tests.
    fn corrupt_section(bytes: &mut [u8], id: u32) {
        let sections = read_section_table_lenient(bytes).unwrap();
        let (s, ok) = sections.iter().find(|(s, _)| s.id == id).unwrap();
        assert!(ok, "section {id} must start valid");
        bytes[s.offset] ^= 0xFF;
    }

    fn assert_bitwise_rows(a: &Repository, b: &Repository, queries: &[&str]) {
        for query in queries {
            let (x, y) = (a.store().score_row(query), b.store().score_row(query));
            assert_eq!(x.len(), y.len(), "{query:?}");
            for (p, q) in x.iter().zip(y.iter()) {
                assert_eq!(p.to_bits(), q.to_bits(), "{query:?}");
            }
        }
    }

    #[test]
    fn salvage_of_clean_snapshot_is_clean_and_identical() {
        let repo = repository();
        let (loaded, report) =
            Repository::load_snapshot_report(&repo.save_snapshot(), RecoveryPolicy::Salvage)
                .unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(loaded, repo);
        assert_eq!(loaded.store().cached_rows(), 2);
    }

    #[test]
    fn salvage_rebuilds_corrupt_labels_and_keeps_rows() {
        let repo = repository();
        let mut bytes = repo.save_snapshot();
        corrupt_section(&mut bytes, section::LABELS);
        assert!(matches!(
            Repository::load_snapshot(&bytes),
            Err(PersistError::ChecksumMismatch(section::LABELS))
        ));
        let (loaded, report) =
            Repository::load_snapshot_report(&bytes, RecoveryPolicy::Salvage).unwrap();
        assert_eq!(
            report.events,
            vec![SalvageEvent::LabelsRebuilt(Damage::BadChecksum)]
        );
        // Interner replay rebuilds the identical label list, so the
        // cached rows survive and stay bitwise.
        assert_eq!(loaded, repo);
        assert_eq!(loaded.store().cached_rows(), 2);
        assert_bitwise_rows(&repo, &loaded, &["bookTitle", "title"]);
        assert_eq!(loaded.store().pair_evals(), 0, "rows must have survived");
    }

    #[test]
    fn salvage_rebuilds_corrupt_tokens() {
        let repo = repository();
        let mut bytes = repo.save_snapshot();
        corrupt_section(&mut bytes, section::TOKENS);
        let (loaded, report) =
            Repository::load_snapshot_report(&bytes, RecoveryPolicy::Salvage).unwrap();
        assert_eq!(
            report.events,
            vec![SalvageEvent::TokensRebuilt(Damage::BadChecksum)]
        );
        assert_eq!(loaded, repo);
    }

    #[test]
    fn salvage_drops_corrupt_rows_to_cold_store() {
        let repo = repository();
        let mut bytes = repo.save_snapshot();
        corrupt_section(&mut bytes, section::ROWS);
        let (loaded, report) =
            Repository::load_snapshot_report(&bytes, RecoveryPolicy::Salvage).unwrap();
        assert_eq!(
            report.events,
            vec![SalvageEvent::RowsDropped(Damage::BadChecksum)]
        );
        assert_eq!(loaded.store().cached_rows(), 0, "store restarts cold");
        // Cold re-sweeps still produce bitwise-identical rows.
        assert_bitwise_rows(&repo, &loaded, &["bookTitle", "title"]);
    }

    #[test]
    fn salvage_defaults_corrupt_config() {
        let mut repo = Repository::with_store_config(smx_repo::StoreConfig {
            shards: 0,
            max_cached_rows: Some(3),
            batch_threads: 2,
        });
        repo.add(SchemaBuilder::new("s").root("r").build());
        let mut bytes = repo.save_snapshot();
        corrupt_section(&mut bytes, section::CONFIG);
        let (loaded, report) =
            Repository::load_snapshot_report(&bytes, RecoveryPolicy::Salvage).unwrap();
        assert_eq!(
            report.events,
            vec![SalvageEvent::ConfigDefaulted(Damage::BadChecksum)]
        );
        assert_eq!(loaded.store().config(), smx_repo::StoreConfig::default());
    }

    #[test]
    fn filters_section_round_trips_lanes() {
        let repo = repository();
        let loaded = Repository::load_snapshot(&repo.save_snapshot()).unwrap();
        let (a, b) = (repo.store(), loaded.store());
        assert_eq!(a.filter_index().len(), b.filter_index().len());
        assert_eq!(a.filter_index().export(), b.filter_index().export());
        // The loaded lanes bound identically to the saved ones.
        let (mut x, mut y) = (Vec::new(), Vec::new());
        for q in ["bookTitle", "store", ""] {
            let filter = smx_repo::QueryFilter::new(q);
            a.similarity_upper_bounds(&filter, &mut x);
            b.similarity_upper_bounds(&filter, &mut y);
            assert_eq!(x, y, "{q:?}");
        }
    }

    #[test]
    fn strict_load_rejects_corrupt_filters() {
        let repo = repository();
        let mut bytes = repo.save_snapshot();
        corrupt_section(&mut bytes, section::FILTERS);
        assert!(matches!(
            Repository::load_snapshot(&bytes),
            Err(PersistError::ChecksumMismatch(section::FILTERS))
        ));
    }

    #[test]
    fn salvage_rebuilds_corrupt_filters_from_labels() {
        let repo = repository();
        let mut bytes = repo.save_snapshot();
        corrupt_section(&mut bytes, section::FILTERS);
        let (loaded, report) =
            Repository::load_snapshot_report(&bytes, RecoveryPolicy::Salvage).unwrap();
        assert_eq!(
            report.events,
            vec![SalvageEvent::FiltersRebuilt(Damage::BadChecksum)]
        );
        // Rebuilt lanes are identical to the lost ones (pure function
        // of the label text), so candidate bounds are unaffected.
        assert_eq!(
            loaded.store().filter_index().export(),
            repo.store().filter_index().export()
        );
        assert_eq!(loaded.store().salvage_events(), 1);
    }

    /// Rebuild snapshot bytes keeping only the sections in `keep` —
    /// simulates a writer from before an additive section existed.
    fn strip_to_sections(bytes: &[u8], keep: &[u32]) -> Vec<u8> {
        let sections = read_section_table(bytes).unwrap();
        let kept: Vec<_> = sections.iter().filter(|s| keep.contains(&s.id)).collect();
        let mut w = Writer::new();
        w.put_bytes(&MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_u32(kept.len() as u32);
        let mut entry_at = Vec::new();
        for s in &kept {
            w.put_u32(s.id);
            entry_at.push(w.len());
            w.put_u64(0);
            w.put_u64(s.len as u64);
            w.put_u64(fnv1a(&bytes[s.offset..s.offset + s.len]));
        }
        for (s, at) in kept.iter().zip(entry_at) {
            let offset = w.len() as u64;
            w.patch_u64(at, offset);
            w.put_bytes(&bytes[s.offset..s.offset + s.len]);
        }
        w.into_bytes()
    }

    #[test]
    fn snapshots_without_filters_section_load_and_rebuild_lanes() {
        // A snapshot from a pre-FILTERS writer: sections 1–5 only.
        let repo = repository();
        let old = strip_to_sections(&repo.save_snapshot(), &section::MANDATORY);
        let loaded = Repository::load_snapshot(&old).expect("additive section may be absent");
        assert_eq!(loaded, repo);
        // Lanes were rebuilt from the label text — identical to what a
        // new writer would have persisted — and silently (no salvage).
        assert_eq!(
            loaded.store().filter_index().export(),
            repo.store().filter_index().export()
        );
        let (salvaged, report) =
            Repository::load_snapshot_report(&old, RecoveryPolicy::Salvage).unwrap();
        assert!(report.is_clean(), "absence is compatibility, not damage");
        assert_eq!(salvaged.store().salvage_events(), 0);
    }

    /// A repository with one removed and one replaced slot — the
    /// canonical mutated fixture for tombstone persistence.
    fn mutated_repository() -> Repository {
        let mut repo = repository();
        repo.add(
            SchemaBuilder::new("extra")
                .root("warehouse")
                .leaf("isbn", PrimitiveType::String)
                .build(),
        );
        repo.remove_schema(smx_repo::SchemaId(0));
        repo.replace_schema(
            smx_repo::SchemaId(1),
            SchemaBuilder::new("shop2")
                .root("orderDepot")
                .leaf("orderLine", PrimitiveType::String)
                .build(),
        );
        repo.store().score_row("orderTitle");
        repo
    }

    #[test]
    fn tombstones_round_trip_through_snapshot() {
        let repo = mutated_repository();
        let bytes = repo.save_snapshot();
        let loaded = Repository::load_snapshot(&bytes).expect("mutated snapshot decodes");
        assert_eq!(loaded, repo);
        for sid in repo.schema_ids() {
            assert_eq!(loaded.is_removed(sid), repo.is_removed(sid), "{sid}");
            assert_eq!(
                loaded.store().schema_generation(sid),
                repo.store().schema_generation(sid),
                "{sid}"
            );
        }
        assert_eq!(loaded.live_schemas(), 2);
        assert!(loaded.is_removed(smx_repo::SchemaId(0)));
        assert_eq!(loaded.store().schema_generation(smx_repo::SchemaId(1)), 2);
        assert_eq!(
            loaded.store().orphaned_labels(),
            repo.store().orphaned_labels()
        );
        assert_bitwise_rows(&repo, &loaded, &["orderTitle", "orderLine", "title"]);
    }

    #[test]
    fn snapshots_without_tombstones_section_load_all_live() {
        // A snapshot from a pre-mutability writer: no TOMBSTONES
        // section. Every slot loads live at generation 0 — exactly the
        // state such a writer could have had — and silently (absence is
        // compatibility, not damage).
        let repo = repository();
        let mut keep = section::MANDATORY.to_vec();
        keep.push(section::FILTERS);
        let old = strip_to_sections(&repo.save_snapshot(), &keep);
        let loaded = Repository::load_snapshot(&old).expect("additive section may be absent");
        assert_eq!(loaded, repo);
        for sid in loaded.schema_ids() {
            assert!(!loaded.is_removed(sid));
            assert_eq!(loaded.store().schema_generation(sid), 0);
        }
        assert_eq!(loaded.live_schemas(), loaded.len());
        let (_, report) = Repository::load_snapshot_report(&old, RecoveryPolicy::Salvage).unwrap();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn corrupt_tombstones_rejected_strict_salvaged_all_live() {
        let repo = mutated_repository();
        let mut bytes = repo.save_snapshot();
        corrupt_section(&mut bytes, section::TOMBSTONES);
        assert!(matches!(
            Repository::load_snapshot(&bytes),
            Err(PersistError::ChecksumMismatch(section::TOMBSTONES))
        ));
        let (salvaged, report) =
            Repository::load_snapshot_report(&bytes, RecoveryPolicy::Salvage).unwrap();
        assert_eq!(
            report.events,
            vec![SalvageEvent::TombstonesDropped(Damage::BadChecksum)]
        );
        // Degraded: liveness flags lost (all slots report live), but
        // the tombstoned slot is still an empty schema every matcher
        // skips — answers stay bitwise identical, and cached rows
        // survive.
        for sid in salvaged.schema_ids() {
            assert!(!salvaged.is_removed(sid));
        }
        assert_eq!(salvaged.schema(smx_repo::SchemaId(0)).len(), 0);
        assert!(salvaged.store().cached_rows() > 0);
        assert_bitwise_rows(&repo, &salvaged, &["orderTitle", "orderLine"]);
    }

    #[test]
    fn config_payloads_without_shard_count_decode_as_auto() {
        // A CONFIG payload from a pre-sharding writer ends after
        // batch_threads; the reader must treat the missing trailing
        // field as `shards: 0` (auto) rather than erroring.
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u64(7);
        w.put_u64(3);
        let (cap, threads, shards) = decode_config(&w.into_bytes()).unwrap();
        assert_eq!(cap, Some(7));
        assert_eq!(threads, 3);
        assert_eq!(shards, 0);
        // And the current writer round-trips a configured count.
        let state = StoreState {
            labels: Vec::new(),
            schema_labels: Vec::new(),
            postings: Vec::new(),
            rows: Vec::new(),
            max_cached_rows: Some(7),
            batch_threads: 3,
            shards: 16,
            filters: None,
            tombstones: None,
        };
        let (cap, threads, shards) = decode_config(&encode_config(&state)).unwrap();
        assert_eq!((cap, threads, shards), (Some(7), 3, 16));
    }

    #[test]
    fn salvage_still_rejects_corrupt_schemas() {
        let repo = repository();
        let mut bytes = repo.save_snapshot();
        corrupt_section(&mut bytes, section::SCHEMAS);
        assert!(matches!(
            Repository::load_snapshot_report(&bytes, RecoveryPolicy::Salvage),
            Err(PersistError::ChecksumMismatch(section::SCHEMAS))
        ));
    }

    #[test]
    fn salvage_still_rejects_bad_header() {
        let repo = repository();
        let mut bytes = repo.save_snapshot();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Repository::load_snapshot_report(&bytes, RecoveryPolicy::Salvage),
            Err(PersistError::BadMagic)
        ));
        let mut bytes = repo.save_snapshot();
        bytes[8] = 99; // version
        assert!(matches!(
            Repository::load_snapshot_report(&bytes, RecoveryPolicy::Salvage),
            Err(PersistError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn salvage_handles_truncated_tail() {
        // Chop the snapshot mid-payload: sections whose spans fall off
        // the end read as damaged, sections before the cut survive.
        let repo = repository();
        let bytes = repo.save_snapshot();
        let cut = &bytes[..bytes.len() - bytes.len() / 4];
        match Repository::load_snapshot_report(cut, RecoveryPolicy::Salvage) {
            Ok((loaded, report)) => {
                assert!(!report.is_clean());
                assert_bitwise_rows(&repo, &loaded, &["bookTitle", "title"]);
            }
            // If the cut took SCHEMAS itself, a hard error is correct.
            Err(e) => assert!(matches!(
                e,
                PersistError::ChecksumMismatch(_) | PersistError::Truncated
            )),
        }
    }

    #[test]
    fn atomic_save_preserves_old_snapshot_on_create_failure() {
        use crate::fault::{Fault, FaultIo, FaultPlan};
        use std::sync::Arc;
        let repo = repository();
        let path =
            std::env::temp_dir().join(format!("smx-snap-atomic-{}.snap", std::process::id()));
        repo.save_snapshot_file(&path).unwrap();
        let old = std::fs::read(&path).unwrap();
        // Every op of the save fails from the start: the snapshot on
        // disk must be untouched.
        let io = FaultIo::new(
            Arc::new(RealIo),
            FaultPlan::clean().fault_at(0, Fault::Fail),
        );
        let bigger = {
            let mut r = repository();
            r.add(SchemaBuilder::new("extra").root("extra").build());
            r
        };
        assert!(bigger.save_snapshot_file_with(&io, &path).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), old, "old snapshot intact");
        let loaded = Repository::load_snapshot_file(&path).unwrap();
        assert_eq!(loaded, repo);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_sections_are_skipped() {
        // Append a section id far above the known range: a v1 reader
        // must ignore it (forward compatibility for additive sections).
        let repo = repository();
        let mut bytes = repo.save_snapshot();
        // Rewrite: rebuild with one extra empty section in the table.
        let payload: &[u8] = b"future";
        let mut w = Writer::new();
        w.put_bytes(&MAGIC);
        w.put_u32(FORMAT_VERSION);
        let sections = read_section_table(&bytes).unwrap();
        w.put_u32(sections.len() as u32 + 1);
        let extra_tail = 28; // one extra table entry shifts payloads by this
        for s in &sections {
            w.put_u32(s.id);
            w.put_u64((s.offset + extra_tail) as u64);
            w.put_u64(s.len as u64);
            w.put_u64(fnv1a(&bytes[s.offset..s.offset + s.len]));
        }
        w.put_u32(999);
        w.put_u64((bytes.len() + extra_tail) as u64);
        w.put_u64(payload.len() as u64);
        w.put_u64(fnv1a(payload));
        let first_payload = sections.iter().map(|s| s.offset).min().unwrap();
        w.put_bytes(&bytes.split_off(first_payload));
        w.put_bytes(payload);
        let loaded = Repository::load_snapshot(&w.into_bytes()).expect("unknown id skipped");
        assert_eq!(loaded, repo);
    }
}

//! The versioned, checksummed repository snapshot: encode a
//! [`Repository`] (schemas + label-store hot state) to bytes and
//! reassemble it, bitwise-identically, on the other side of a restart.
//!
//! See the crate docs for the byte layout and the
//! versioning/compatibility policy. Decoding is strictly
//! validate-then-assemble: the section table and every checksum are
//! verified first, then each payload is decoded into plain data, the
//! cross-references are checked (column maps vs schemas, label ids vs
//! the label list, row lengths vs the label count), and only then is a
//! [`LabelStore`] imported and the repository assembled — an error at
//! any point returns before any repository state exists.

use crate::error::PersistError;
use crate::wire::{fnv1a, Reader, Writer};
use smx_repo::{LabelStore, Repository, StoreState};
use smx_xml::{Node, NodeId, Occurs, PrimitiveType, Schema};
use std::path::Path;

/// The 8-byte snapshot magic. Never changes across versions.
pub const MAGIC: [u8; 8] = *b"SMXPSNAP";

/// The snapshot format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Section ids of the version-1 layout. All are mandatory; readers
/// skip ids they don't know (see the compatibility policy).
pub mod section {
    /// Repository schemas (names + arena nodes).
    pub const SCHEMAS: u32 = 1;
    /// Interned labels + per-schema column maps.
    pub const LABELS: u32 = 2;
    /// Token inverted index postings.
    pub const TOKENS: u32 = 3;
    /// Cached score rows, least recently used first.
    pub const ROWS: u32 = 4;
    /// Store configuration (cache bound, sweep workers).
    pub const CONFIG: u32 = 5;

    /// Every mandatory version-1 section.
    pub const MANDATORY: [u32; 5] = [SCHEMAS, LABELS, TOKENS, ROWS, CONFIG];
}

/// Snapshot persistence for repository-shaped types.
///
/// Implemented for [`Repository`]; with the trait in scope the methods
/// read as inherent: `repo.save_snapshot()`,
/// `Repository::load_snapshot(&bytes)`.
pub trait Snapshot: Sized {
    /// Serialise to the versioned snapshot format.
    fn save_snapshot(&self) -> Vec<u8>;

    /// Reconstruct from snapshot bytes. The result is functionally
    /// indistinguishable from the instance that was saved: match
    /// results are bitwise identical and no cached work is lost.
    fn load_snapshot(bytes: &[u8]) -> Result<Self, PersistError>;

    /// [`save_snapshot`](Self::save_snapshot) straight to a file.
    fn save_snapshot_file(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        std::fs::write(path, self.save_snapshot())?;
        Ok(())
    }

    /// [`load_snapshot`](Self::load_snapshot) straight from a file.
    fn load_snapshot_file(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Self::load_snapshot(&std::fs::read(path)?)
    }
}

impl Snapshot for Repository {
    fn save_snapshot(&self) -> Vec<u8> {
        let state = self.store().export_state();
        let sections: Vec<(u32, Vec<u8>)> = vec![
            (section::SCHEMAS, encode_schemas(self)),
            (section::LABELS, encode_labels(&state)),
            (section::TOKENS, encode_tokens(&state)),
            (section::ROWS, encode_rows(&state)),
            (section::CONFIG, encode_config(&state)),
        ];
        let mut w = Writer::new();
        w.put_bytes(&MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_u32(sections.len() as u32);
        // Table first (offsets backpatched), payloads after.
        let mut entry_at = Vec::with_capacity(sections.len());
        for (id, payload) in &sections {
            w.put_u32(*id);
            entry_at.push(w.len());
            w.put_u64(0); // offset, patched below
            w.put_u64(payload.len() as u64);
            w.put_u64(fnv1a(payload));
        }
        for ((_, payload), at) in sections.iter().zip(entry_at) {
            let offset = w.len() as u64;
            w.patch_u64(at, offset);
            w.put_bytes(payload);
        }
        w.into_bytes()
    }

    fn load_snapshot(bytes: &[u8]) -> Result<Self, PersistError> {
        let sections = read_section_table(bytes)?;
        let payload = |id: u32| -> Result<&[u8], PersistError> {
            sections
                .iter()
                .find(|s| s.id == id)
                .map(|s| &bytes[s.offset..s.offset + s.len])
                .ok_or(PersistError::MissingSection(id))
        };
        let schemas = decode_schemas(payload(section::SCHEMAS)?)?;
        let (labels, schema_labels) = decode_labels(payload(section::LABELS)?)?;
        let postings = decode_tokens(payload(section::TOKENS)?)?;
        let rows = decode_rows(payload(section::ROWS)?)?;
        let (max_cached_rows, batch_threads) = decode_config(payload(section::CONFIG)?)?;
        let state = StoreState {
            labels,
            schema_labels,
            postings,
            rows,
            max_cached_rows,
            batch_threads,
        };
        validate(&schemas, &state)?;
        Ok(Repository::from_parts(
            schemas,
            LabelStore::import_state(state),
        ))
    }
}

/// One parsed and checksum-verified section table entry.
struct SectionEntry {
    id: u32,
    offset: usize,
    len: usize,
}

/// Parse the header + section table and verify every section's bounds
/// and checksum. Unknown section ids are kept in the table (and simply
/// never asked for) — the forward-compatibility half of the policy.
fn read_section_table(bytes: &[u8]) -> Result<Vec<SectionEntry>, PersistError> {
    let mut r = Reader::new(bytes);
    if bytes.len() < MAGIC.len() {
        return Err(PersistError::Truncated);
    }
    let mut magic = [0u8; 8];
    for m in &mut magic {
        *m = r.get_u8()?;
    }
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let count = r.get_u32()? as usize;
    // Each table entry is 28 bytes; a count the remaining bytes cannot
    // hold is a lie (the header is outside the checksummed payloads, so
    // this is the only integrity check it gets) — and must be caught
    // *before* sizing any allocation by it.
    if count > r.remaining() / 28 {
        return Err(PersistError::Truncated);
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.get_u32()?;
        let offset = r.get_u64()? as usize;
        let len = r.get_u64()? as usize;
        let checksum = r.get_u64()?;
        let end = offset.checked_add(len).ok_or(PersistError::Truncated)?;
        if end > bytes.len() {
            return Err(PersistError::Truncated);
        }
        if fnv1a(&bytes[offset..end]) != checksum {
            return Err(PersistError::ChecksumMismatch(id));
        }
        entries.push(SectionEntry { id, offset, len });
    }
    Ok(entries)
}

fn encode_schemas(repo: &Repository) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(repo.len() as u32);
    for (_, schema) in repo.iter() {
        w.put_str(schema.name());
        w.put_u32(schema.len() as u32);
        for id in schema.node_ids() {
            let node = schema.node(id);
            w.put_str(&node.name);
            w.put_u8(match node.kind {
                smx_xml::NodeKind::Element => 0,
                smx_xml::NodeKind::Attribute => 1,
            });
            w.put_u8(encode_type(node.ty));
            w.put_u32(node.occurs.min);
            match node.occurs.max {
                Some(max) => {
                    w.put_u8(1);
                    w.put_u32(max);
                }
                None => w.put_u8(0),
            }
            // Parents always precede children in the arena, so a plain
            // parent pointer reconstructs the tree in one forward pass.
            w.put_u32(node.parent.map_or(u32::MAX, |p| p.0));
        }
    }
    w.into_bytes()
}

fn decode_schemas(bytes: &[u8]) -> Result<Vec<Schema>, PersistError> {
    let mut r = Reader::new(bytes);
    let count = r.get_u32()? as usize;
    let mut schemas = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let name = r.get_str()?;
        let nodes = r.get_u32()? as usize;
        let mut schema = Schema::new(name);
        for i in 0..nodes {
            let mut node = Node::element(r.get_str()?);
            node.kind = match r.get_u8()? {
                0 => smx_xml::NodeKind::Element,
                1 => smx_xml::NodeKind::Attribute,
                k => return Err(PersistError::Corrupt(format!("unknown node kind {k}"))),
            };
            node.ty = decode_type(r.get_u8()?)?;
            let min = r.get_u32()?;
            let max = match r.get_u8()? {
                0 => None,
                1 => Some(r.get_u32()?),
                f => return Err(PersistError::Corrupt(format!("bad occurs flag {f}"))),
            };
            node.occurs = Occurs { min, max };
            let parent = r.get_u32()?;
            let added = if parent == u32::MAX {
                schema
                    .add_root(node)
                    .map_err(|e| PersistError::Corrupt(format!("schema rebuild: {e}")))?
            } else {
                if parent as usize >= i {
                    return Err(PersistError::Corrupt(format!(
                        "node {i} has forward parent {parent}"
                    )));
                }
                schema
                    .add_child(NodeId(parent), node)
                    .map_err(|e| PersistError::Corrupt(format!("schema rebuild: {e}")))?
            };
            debug_assert_eq!(added.index(), i, "arena replay preserves ids");
        }
        schemas.push(schema);
    }
    Ok(schemas)
}

fn encode_type(ty: PrimitiveType) -> u8 {
    match ty {
        PrimitiveType::Complex => 0,
        PrimitiveType::String => 1,
        PrimitiveType::Integer => 2,
        PrimitiveType::Decimal => 3,
        PrimitiveType::Date => 4,
        PrimitiveType::Boolean => 5,
        PrimitiveType::Id => 6,
    }
}

fn decode_type(v: u8) -> Result<PrimitiveType, PersistError> {
    Ok(match v {
        0 => PrimitiveType::Complex,
        1 => PrimitiveType::String,
        2 => PrimitiveType::Integer,
        3 => PrimitiveType::Decimal,
        4 => PrimitiveType::Date,
        5 => PrimitiveType::Boolean,
        6 => PrimitiveType::Id,
        t => return Err(PersistError::Corrupt(format!("unknown primitive type {t}"))),
    })
}

fn encode_labels(state: &StoreState) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(state.labels.len() as u32);
    for label in &state.labels {
        w.put_str(label);
    }
    w.put_u32(state.schema_labels.len() as u32);
    for columns in &state.schema_labels {
        w.put_u32(columns.len() as u32);
        for &id in columns {
            w.put_u32(id);
        }
    }
    w.into_bytes()
}

type LabelSections = (Vec<String>, Vec<Vec<u32>>);

fn decode_labels(bytes: &[u8]) -> Result<LabelSections, PersistError> {
    let mut r = Reader::new(bytes);
    let count = r.get_u32()? as usize;
    let mut labels = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        labels.push(r.get_str()?);
    }
    let schemas = r.get_u32()? as usize;
    let mut schema_labels = Vec::with_capacity(schemas.min(1 << 20));
    for _ in 0..schemas {
        let n = r.get_u32()? as usize;
        let mut columns = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            columns.push(r.get_u32()?);
        }
        schema_labels.push(columns);
    }
    Ok((labels, schema_labels))
}

fn encode_tokens(state: &StoreState) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(state.postings.len() as u32);
    for (token, elements) in &state.postings {
        w.put_str(token);
        w.put_u32(elements.len() as u32);
        for element in elements {
            w.put_u32(element.schema.0);
            w.put_u32(element.node.0);
        }
    }
    w.into_bytes()
}

fn decode_tokens(bytes: &[u8]) -> Result<Vec<(String, Vec<smx_repo::ElementRef>)>, PersistError> {
    let mut r = Reader::new(bytes);
    let count = r.get_u32()? as usize;
    let mut postings = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let token = r.get_str()?;
        let n = r.get_u32()? as usize;
        let mut elements = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let schema = smx_repo::SchemaId(r.get_u32()?);
            let node = NodeId(r.get_u32()?);
            elements.push(smx_repo::ElementRef { schema, node });
        }
        postings.push((token, elements));
    }
    Ok(postings)
}

fn encode_rows(state: &StoreState) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(state.rows.len() as u32);
    for (query, row) in &state.rows {
        w.put_str(query);
        w.put_u64(row.len() as u64);
        for &v in row {
            w.put_f64(v);
        }
    }
    w.into_bytes()
}

fn decode_rows(bytes: &[u8]) -> Result<Vec<(String, Vec<f64>)>, PersistError> {
    let mut r = Reader::new(bytes);
    let count = r.get_u32()? as usize;
    let mut rows = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let query = r.get_str()?;
        let n = r.get_u64()? as usize;
        if n > r.remaining() / 8 {
            return Err(PersistError::Truncated);
        }
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(r.get_f64()?);
        }
        rows.push((query, row));
    }
    Ok(rows)
}

fn encode_config(state: &StoreState) -> Vec<u8> {
    let mut w = Writer::new();
    match state.max_cached_rows {
        Some(cap) => {
            w.put_u8(1);
            w.put_u64(cap as u64);
        }
        None => w.put_u8(0),
    }
    w.put_u64(state.batch_threads as u64);
    w.into_bytes()
}

fn decode_config(bytes: &[u8]) -> Result<(Option<usize>, usize), PersistError> {
    let mut r = Reader::new(bytes);
    let max_cached_rows = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_u64()? as usize),
        f => return Err(PersistError::Corrupt(format!("bad config flag {f}"))),
    };
    let batch_threads = r.get_u64()? as usize;
    Ok((max_cached_rows, batch_threads))
}

/// Cross-reference the decoded sections before any store is built: the
/// label list must be duplicate-free, every column map must mirror its
/// schema's node names through the label list, every cached row must be
/// a valid prefix of the label list, and every token posting must point
/// at a real element (the pre-filter path indexes schemas by these
/// references unchecked).
fn validate(schemas: &[Schema], state: &StoreState) -> Result<(), PersistError> {
    let mut seen = std::collections::HashSet::with_capacity(state.labels.len());
    for label in &state.labels {
        if !seen.insert(label.as_str()) {
            return Err(PersistError::Corrupt(format!("duplicate label {label:?}")));
        }
    }
    if state.schema_labels.len() != schemas.len() {
        return Err(PersistError::Corrupt(format!(
            "{} column maps for {} schemas",
            state.schema_labels.len(),
            schemas.len()
        )));
    }
    for (i, (schema, columns)) in schemas.iter().zip(&state.schema_labels).enumerate() {
        if columns.len() != schema.len() {
            return Err(PersistError::Corrupt(format!(
                "schema {i} column map has {} entries for {} nodes",
                columns.len(),
                schema.len()
            )));
        }
        for (node, &label) in schema.node_ids().zip(columns) {
            let name = state.labels.get(label as usize).ok_or_else(|| {
                PersistError::Corrupt(format!("schema {i} references label {label}"))
            })?;
            if *name != schema.node(node).name {
                return Err(PersistError::Corrupt(format!(
                    "schema {i} node {node} labelled {name:?}, expected {:?}",
                    schema.node(node).name
                )));
            }
        }
    }
    for (query, row) in &state.rows {
        if row.len() > state.labels.len() {
            return Err(PersistError::Corrupt(format!(
                "row {query:?} has {} entries for {} labels",
                row.len(),
                state.labels.len()
            )));
        }
    }
    for (token, elements) in &state.postings {
        for element in elements {
            let schema = schemas.get(element.schema.index()).ok_or_else(|| {
                PersistError::Corrupt(format!(
                    "token {token:?} posting references schema {}",
                    element.schema
                ))
            })?;
            if element.node.index() >= schema.len() {
                return Err(PersistError::Corrupt(format!(
                    "token {token:?} posting references node {} of {}-node schema {}",
                    element.node,
                    schema.len(),
                    element.schema
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_xml::SchemaBuilder;

    fn repository() -> Repository {
        let mut repo = Repository::new();
        repo.add(
            SchemaBuilder::new("bib")
                .root("bibliography")
                .child("book", |b| {
                    b.leaf("title", PrimitiveType::String)
                        .leaf("year", PrimitiveType::Integer)
                })
                .build(),
        );
        repo.add(
            SchemaBuilder::new("shop")
                .root("store")
                .leaf("title", PrimitiveType::String)
                .build(),
        );
        repo.store().score_row("bookTitle");
        repo.store().score_row("title");
        repo
    }

    #[test]
    fn snapshot_round_trips_schemas_and_hot_state() {
        let repo = repository();
        let bytes = repo.save_snapshot();
        let loaded = Repository::load_snapshot(&bytes).expect("snapshot decodes");
        assert_eq!(loaded, repo, "schema lists must be equal");
        for (sid, schema) in repo.iter() {
            assert_eq!(loaded.schema(sid), schema);
        }
        let (a, b) = (repo.store(), loaded.store());
        assert_eq!(a.len(), b.len());
        assert_eq!(b.cached_rows(), 2);
        for query in ["bookTitle", "title"] {
            let (x, y) = (a.score_row(query), b.score_row(query));
            assert_eq!(x.len(), y.len());
            for (p, q) in x.iter().zip(y.iter()) {
                assert_eq!(p.to_bits(), q.to_bits(), "{query:?}");
            }
        }
        assert_eq!(b.pair_evals(), 0, "loaded rows must serve from cache");
    }

    #[test]
    fn empty_repository_round_trips() {
        let repo = Repository::new();
        let loaded = Repository::load_snapshot(&repo.save_snapshot()).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.store().len(), 0);
        assert_eq!(loaded.store().cached_rows(), 0);
    }

    #[test]
    fn config_round_trips() {
        let mut repo = Repository::with_store_config(smx_repo::StoreConfig {
            max_cached_rows: Some(3),
            batch_threads: 2,
        });
        repo.add(SchemaBuilder::new("s").root("r").build());
        let loaded = Repository::load_snapshot(&repo.save_snapshot()).unwrap();
        assert_eq!(loaded.store().config(), repo.store().config());
    }

    #[test]
    fn unknown_sections_are_skipped() {
        // Append a section id far above the known range: a v1 reader
        // must ignore it (forward compatibility for additive sections).
        let repo = repository();
        let mut bytes = repo.save_snapshot();
        // Rewrite: rebuild with one extra empty section in the table.
        let payload: &[u8] = b"future";
        let mut w = Writer::new();
        w.put_bytes(&MAGIC);
        w.put_u32(FORMAT_VERSION);
        let sections = read_section_table(&bytes).unwrap();
        w.put_u32(sections.len() as u32 + 1);
        let extra_tail = 28; // one extra table entry shifts payloads by this
        for s in &sections {
            w.put_u32(s.id);
            w.put_u64((s.offset + extra_tail) as u64);
            w.put_u64(s.len as u64);
            w.put_u64(fnv1a(&bytes[s.offset..s.offset + s.len]));
        }
        w.put_u32(999);
        w.put_u64((bytes.len() + extra_tail) as u64);
        w.put_u64(payload.len() as u64);
        w.put_u64(fnv1a(payload));
        let first_payload = sections.iter().map(|s| s.offset).min().unwrap();
        w.put_bytes(&bytes.split_off(first_payload));
        w.put_bytes(payload);
        let loaded = Repository::load_snapshot(&w.into_bytes()).expect("unknown id skipped");
        assert_eq!(loaded, repo);
    }
}

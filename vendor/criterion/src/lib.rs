//! Offline mini-`criterion`.
//!
//! A wall-clock micro-benchmark harness exposing the criterion API subset
//! the workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `sample_size` /
//! `bench_with_input` / `finish`, [`BenchmarkId::from_parameter`], and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: per bench, a short calibration run sizes batches so
//! one sample takes ≈10 ms, then `sample_size` samples are timed and the
//! median per-iteration time is reported. Set `SMX_BENCH_JSON=<path>` to
//! append one JSON line per bench (`{"bench": .., "ns_per_iter": ..}`) —
//! the repo's `scripts/bench_matching.sh` uses this to build
//! `BENCH_matching.json`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one bench within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from the parameter's `Display` form.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Per-iteration timing callback holder.
pub struct Bencher {
    samples: usize,
    /// Median ns/iter of the last `iter` call.
    result_ns: f64,
}

impl Bencher {
    /// Measure `f`, storing the median per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in ~10ms?
        let calib_start = Instant::now();
        std::hint::black_box(f());
        let one = calib_start.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            (Duration::from_millis(10).as_nanos() / one.as_nanos()).clamp(1, 10_000) as usize;
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(f());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.result_ns = per_iter_ns[per_iter_ns.len() / 2];
    }
}

/// The harness: owns the CLI filter and the JSON sink.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            sample_size: 20,
            json_path: std::env::var("SMX_BENCH_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Build from CLI args: the first non-flag argument is a substring
    /// filter on bench names (cargo-bench passes `--bench` etc., which are
    /// ignored).
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            ..Criterion::default()
        }
    }

    fn record(&mut self, name: &str, ns: f64) {
        println!("bench: {name:<44} {:>14.1} ns/iter", ns);
        if let Some(path) = &self.json_path {
            use std::io::Write;
            let line = format!("{{\"bench\":\"{name}\",\"ns_per_iter\":{ns:.1}}}\n");
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
        }
    }

    fn skipped(&self, name: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !name.contains(f))
    }

    /// Benchmark a closure under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if self.skipped(name) {
            return;
        }
        let mut bencher = Bencher {
            samples: self.sample_size,
            result_ns: 0.0,
        };
        f(&mut bencher);
        self.record(name, bencher.result_ns);
    }

    /// Open a named bench group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Print the closing summary (no-op placeholder for API parity).
    pub fn final_summary(&self) {}
}

/// A group of related benches sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Benchmark a closure against one input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.skipped(&full) {
            return;
        }
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher {
            samples,
            result_ns: 0.0,
        };
        f(&mut bencher, input);
        let ns = bencher.result_ns;
        self.criterion.record(&full, ns);
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect bench functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emit the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion {
            filter: None,
            sample_size: 3,
            json_path: None,
        };
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips() {
        let mut c = Criterion {
            filter: Some("matching".into()),
            sample_size: 3,
            json_path: None,
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            b.iter(|| ());
            ran = true;
        });
        assert!(!ran);
        let mut group = c.benchmark_group("matching");
        let mut ran_group = false;
        group
            .sample_size(2)
            .bench_with_input(BenchmarkId::from_parameter("x"), &1, |b, _| {
                b.iter(|| ());
                ran_group = true;
            });
        group.finish();
        assert!(ran_group);
    }
}

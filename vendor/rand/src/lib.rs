//! Offline stand-in for `rand` 0.9.
//!
//! Provides exactly the surface this workspace uses: a deterministic
//! [`rngs::StdRng`] seeded with [`SeedableRng::seed_from_u64`], the
//! [`Rng`] methods `random_bool` / `random_range`, and the slice helpers
//! `choose` / `choose_multiple` from the prelude. The generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality and fast, though
//! the exact streams differ from upstream `rand` (all workspace tests
//! assert self-consistency, not specific draws).

/// Uniform-samplable primitive integer types for [`Rng::random_range`].
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)` (`high` exclusive).
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Lemire-style rejection-free-enough reduction: the spans in
                // this workspace are tiny relative to 2^64, so modulo bias is
                // below observability; use widening multiply anyway.
                let x = rng.next_u64() as u128;
                let r = ((x * span) >> 64) as i128;
                (low as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_uniform!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

/// The subset of the `rand` RNG trait the workspace calls.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform draw from the half-open range `low..high`.
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_half_open(self, range.start, range.end)
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full-state RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNGs.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Inherent mirror of [`SeedableRng::seed_from_u64`] so callers
        /// that only import `rand::rngs::StdRng` still compile.
        pub fn seed_from_u64(seed: u64) -> Self {
            <Self as SeedableRng>::seed_from_u64(seed)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden xoshiro state; SplitMix64
            // cannot produce four zero outputs in a row, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Random selection from slices (`rand`'s `IndexedRandom`).
pub trait IndexedRandom {
    /// The element type.
    type Output;

    /// A uniformly random element, or `None` for an empty slice.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Output>;

    /// `amount` distinct elements, uniformly without replacement (all of
    /// them when `amount >= len`). Order of the returned elements is the
    /// sampling order.
    fn choose_multiple<R: Rng>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Output>;
}

impl<T> IndexedRandom for [T] {
    type Output = T;

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }

    fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = if i + 1 == self.len() {
                i
            } else {
                rng.random_range(i..self.len())
            };
            idx.swap(i, j);
        }
        idx[..amount]
            .iter()
            .map(|&i| &self[i])
            .collect::<Vec<&T>>()
            .into_iter()
    }
}

/// The glob-import surface: traits plus `StdRng`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{IndexedRandom, Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let heads = (0..n).filter(|_| rng.random_bool(0.25)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.03, "frac {frac}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*xs.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = xs.choose_multiple(&mut rng, 8).copied().collect();
        assert_eq!(picked.len(), 8);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "duplicates in {picked:?}");
        // amount > len → everything.
        assert_eq!(xs.choose_multiple(&mut rng, 99).count(), 20);
    }
}

//! Offline mini-`proptest`.
//!
//! The build container has no crates.io access, so this crate reimplements
//! the narrow slice of proptest's API the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_filter`, range and tuple
//! strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`option::of`], [`string::string_regex`] (character-class + bounded
//! repetition subset), [`sample::Index`], `any::<bool>()`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!` /
//! `prop_oneof!` macros.
//!
//! Differences from real proptest: no shrinking (failures report the
//! generated inputs via the assertion message), and cases are generated
//! from a per-test deterministic seed so failures reproduce exactly.

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.len.clone());
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with *target* sizes drawn from `len`.
    /// Because elements may collide, the realised set can be smaller; at
    /// least one element is kept whenever `len` requires a non-empty set.
    pub fn btree_set<S>(element: S, len: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, len }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.usize_in(self.len.clone());
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(16).max(16) {
                out.insert(self.element.gen_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `Some(inner)` three times out of four, `None`
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.usize_in(0..4) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

/// Random index helper (proptest's `sample` module subset).
pub mod sample {
    use crate::strategy::{Arbitrary, Strategy};
    use crate::test_runner::TestRng;

    /// A size-agnostic random index: resolved against a concrete
    /// collection length with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(pub(crate) usize);

    impl Index {
        /// This index reduced into `0..size`. Panics when `size == 0`.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            self.0 % size
        }
    }

    /// Strategy behind `any::<Index>()`.
    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;

        fn gen_value(&self, rng: &mut TestRng) -> Index {
            Index(rng.usize_in(0..usize::MAX))
        }
    }

    impl Arbitrary for Index {
        type Strategy = IndexStrategy;

        fn arbitrary() -> IndexStrategy {
            IndexStrategy
        }
    }
}

/// String strategies from a regex subset.
pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Error from [`string_regex`] on unsupported or malformed patterns.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    #[derive(Debug, Clone)]
    struct Atom {
        /// Candidate characters (closed class or a single literal).
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Strategy for strings matching a regex subset: literal characters,
    /// `[...]` classes with ranges and escapes, and `{n}` / `{m,n}` / `?`
    /// / `*` / `+` quantifiers (unbounded repetition is capped at 8).
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn gen_value(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = rng.usize_in(atom.min..atom.max + 1);
                for _ in 0..n {
                    out.push(atom.chars[rng.usize_in(0..atom.chars.len())]);
                }
            }
            out
        }
    }

    /// Compile `pattern` into a generator strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let err = |msg: &str| Error(format!("{msg} in {pattern:?}"));
        let mut chars = pattern.chars().peekable();
        let mut atoms: Vec<Atom> = Vec::new();
        while let Some(c) = chars.next() {
            let class: Vec<char> = match c {
                '[' => {
                    let mut class = Vec::new();
                    loop {
                        match chars.next() {
                            None => return Err(err("unterminated class")),
                            Some(']') => break,
                            Some('\\') => {
                                class.push(chars.next().ok_or_else(|| err("trailing escape"))?)
                            }
                            Some(lo) => {
                                if chars.peek() == Some(&'-') {
                                    let mut ahead = chars.clone();
                                    ahead.next(); // the '-'
                                    match ahead.peek() {
                                        Some(&hi) if hi != ']' => {
                                            chars.next();
                                            chars.next();
                                            if hi < lo {
                                                return Err(err("inverted range"));
                                            }
                                            class.extend(lo..=hi);
                                        }
                                        _ => class.push(lo),
                                    }
                                } else {
                                    class.push(lo);
                                }
                            }
                        }
                    }
                    if class.is_empty() {
                        return Err(err("empty class"));
                    }
                    class
                }
                '\\' => vec![chars.next().ok_or_else(|| err("trailing escape"))?],
                '(' | ')' | '|' | '.' | '^' | '$' => return Err(err("unsupported metacharacter")),
                literal => vec![literal],
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let spec: String = {
                        let mut s = String::new();
                        for d in chars.by_ref() {
                            if d == '}' {
                                break;
                            }
                            s.push(d);
                        }
                        s
                    };
                    let parse =
                        |s: &str| s.trim().parse::<usize>().map_err(|_| err("bad quantifier"));
                    match spec.split_once(',') {
                        Some((m, n)) => (parse(m)?, parse(n)?),
                        None => {
                            let n = parse(&spec)?;
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            if max < min {
                return Err(err("inverted quantifier"));
            }
            atoms.push(Atom {
                chars: class,
                min,
                max,
            });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }
}

/// Everything a `use proptest::prelude::*;` test expects in scope.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// The `prop::` module alias real proptest's prelude provides.
    pub mod prop {
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_regex_respects_pattern() {
        let strat = crate::string::string_regex("[a-c][0-9_]{0,3}x").unwrap();
        let mut rng = TestRng::deterministic("string_regex_respects_pattern");
        for _ in 0..200 {
            let s = strat.gen_value(&mut rng);
            let bytes: Vec<char> = s.chars().collect();
            assert!(('a'..='c').contains(&bytes[0]), "{s}");
            assert_eq!(*bytes.last().unwrap(), 'x', "{s}");
            assert!(bytes.len() >= 2 && bytes.len() <= 5, "{s}");
            for &c in &bytes[1..bytes.len() - 1] {
                assert!(c.is_ascii_digit() || c == '_', "{s}");
            }
        }
        assert!(crate::string::string_regex("(a|b)").is_err());
    }

    proptest! {
        #[test]
        fn macro_surface_works(
            xs in crate::collection::vec(0u32..10, 1..5),
            flag in any::<bool>(),
            idx in any::<prop::sample::Index>(),
            frac in 0.0f64..=1.0,
        ) {
            prop_assume!(!xs.is_empty());
            let picked = xs[idx.index(xs.len())];
            prop_assert!(picked < 10);
            prop_assert!((0.0..=1.0).contains(&frac));
            let negated = !flag;
            prop_assert_eq!(flag, !negated);
        }

        #[test]
        fn combinators_work(v in crate::collection::vec(1usize..4, 2..6)
            .prop_map(|v| v.len())
            .prop_filter("nonzero", |&n| n > 0))
        {
            prop_assert!((2..6).contains(&v));
        }
    }

    #[test]
    fn oneof_and_just() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::deterministic("oneof");
        let mut seen = [false; 3];
        for _ in 0..100 {
            let v: u8 = strat.gen_value(&mut rng);
            seen[usize::from(v) - 1] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}

//! Test configuration, the deterministic test RNG, and the macro family.

use rand::prelude::*;

/// How many cases each `proptest!` test runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 96 keeps the no-shrink harness
        // quick while still exercising the generators broadly.
        ProptestConfig { cases: 96 }
    }
}

/// Marker returned by `prop_assume!` rejections: the case is skipped, not
/// failed.
#[derive(Debug)]
pub struct Skip;

/// Deterministic per-test RNG: seeded from the test's name so every run
/// (and every failure report) regenerates the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed from a test name.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform `usize` in the half-open range.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        if range.start + 1 >= range.end {
            return range.start;
        }
        self.inner.random_range(range)
    }

    /// Uniform integer (as `i128`) in `[low, high)`.
    pub fn int_in(&mut self, low: i128, high: i128) -> i128 {
        assert!(low < high, "empty integer strategy range");
        let span = (high - low) as u128;
        let x = self.inner.next_u64() as u128;
        low + ((x * span) >> 64) as i128
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[0, 1]` (both endpoints reachable).
    pub fn unit_f64_inclusive(&mut self) -> f64 {
        let denom = ((1u64 << 53) - 1) as f64;
        (self.inner.next_u64() >> 11) as f64 / denom
    }
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@impl ($cfg); $($rest)*}
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)*
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::test_runner::Skip> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    let _skipped = outcome.is_err();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*}
    };
}

/// `assert!` for property bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::std::assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { ::std::assert!($cond, $($fmt)*) };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { ::std::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { ::std::assert_eq!($a, $b, $($fmt)*) };
}

/// Skip the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::Skip);
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(::std::vec![
            $(
                {
                    let s = $strat;
                    ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::gen_value(&s, rng)
                    }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
                }
            ),+
        ])
    };
}

//! The [`Strategy`] trait and its core combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of test values. The mini-harness has no shrinking, so a
/// strategy is simply a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Reject values for which `f` is false, regenerating (up to a bounded
    /// number of attempts) until one passes.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.gen_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 attempts: {}", self.whence);
    }
}

/// A strategy that always yields a clone of the same value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// One boxed alternative of a [`OneOf`] strategy.
pub type BoxedGen<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice among boxed alternatives (built by `prop_oneof!`).
pub struct OneOf<T>(pub Vec<BoxedGen<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! of zero alternatives");
        let i = rng.usize_in(0..self.0.len());
        (self.0[i])(rng)
    }
}

/// Types with a canonical strategy, selected via [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (`any::<bool>()`, …).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Strategy behind `any::<bool>()`.
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn gen_value(&self, rng: &mut TestRng) -> bool {
        rng.usize_in(0..2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty => $via:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.$via(self.start as i128, self.end as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.$via(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(
    u8 => int_in, u16 => int_in, u32 => int_in, u64 => int_in, usize => int_in,
    i8 => int_in, i16 => int_in, i32 => int_in, i64 => int_in, isize => int_in
);

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        // Include the endpoint by widening one ulp's worth of headroom:
        // scale by the closed span and clamp.
        let (lo, hi) = (*self.start(), *self.end());
        (lo + rng.unit_f64_inclusive() * (hi - lo)).clamp(lo.min(hi), hi.max(lo))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! The container building this workspace has no access to crates.io, so
//! the real serde stack cannot be vendored wholesale. Nothing in the
//! workspace serialises at runtime — the `#[derive(Serialize,
//! Deserialize)]` attributes only mark types as wire-ready for future
//! work — so the derives expand to nothing. Swap in the real crates when
//! a network-enabled build wants actual serialisation.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts the input, emits no impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts the input, emits no impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

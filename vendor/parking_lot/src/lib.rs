//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the same no-poison `lock()/read()/write()` surface the
//! workspace uses. Poisoned locks (a panic while holding the guard) abort
//! via `unwrap`, which matches parking_lot's effective behaviour for this
//! codebase: a panicked matcher thread already fails the run.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking the thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader–writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a reader–writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}

//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derives from the sibling `serde_derive` shim so
//! `use serde::{Deserialize, Serialize};` plus `#[derive(...)]` compile
//! unchanged in the network-less build container. No serialisation
//! machinery is provided — none is exercised by the workspace.

pub use serde_derive::{Deserialize, Serialize};
